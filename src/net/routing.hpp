// Multi-path routing: hop-count Dijkstra, Yen's k-shortest paths, and the
// RoutingGraph cache the controller keeps per host pair (paper §IV: computed
// at startup, recomputed only on topology-change events — off the data path).
//
// Paths are interned in a PathPool: the graph stores PathId handles instead
// of link-vector copies, a reverse index LinkId → {host pairs using it} lets
// rebuild() recompute only the pairs a failed/restored link can affect, and
// the control plane (controller/allocator) passes ids on the per-flow hot
// path instead of copying/comparing link vectors.
//
// Construction comes in two flavors (BuildMode), both provably identical to
// the classic eager build because a pair's Yen candidate set is a pure
// function of (topology, banned set, k) — query order cannot change results:
//  - kEager: every pair computed up front (optionally fanned across a
//    util::ThreadPool via materialize_all, which interns results in
//    canonical slot order so PathId assignment matches a serial build).
//  - kLazy: pairs computed on first paths()/has_paths() query; rebuild()
//    merely *invalidates* affected materialized pairs instead of recomputing
//    them. At warehouse scale most host pairs never carry a shuffle flow, so
//    this removes the cold-build wall entirely.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iterator>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"

namespace pythia::sim {
class StateEncoder;
}

namespace pythia::util {
class ThreadPool;
}

namespace pythia::net {

/// A loop-free path as a link chain; endpoints are implied by the links.
struct Path {
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hops() const { return links.size(); }
  friend bool operator==(const Path&, const Path&) = default;
};

/// Shortest path by hop count with deterministic tie-breaking (smaller link
/// ids win). `banned_links` / `banned_nodes` support Yen's spur computation
/// and failure simulation. Returns nullopt when disconnected.
std::optional<Path> shortest_path(
    const Topology& topo, NodeId src, NodeId dst,
    const std::unordered_set<LinkId>& banned_links = {},
    const std::unordered_set<NodeId>& banned_nodes = {});

/// Yen's algorithm: up to `k` loop-free shortest paths in nondecreasing
/// hop-count order (deterministic ordering among equal-length paths).
/// `banned_links` are excluded entirely (failed links). When
/// `touched_links` is non-null, every link of every candidate path the run
/// generated (chosen or not) is appended to it — the routing graph's
/// incremental rebuild keys its reverse index on this union, because a
/// banned link that appears only in an *unchosen* candidate can still flip
/// the deterministic tie-break of a later spur computation.
std::vector<Path> k_shortest_paths(
    const Topology& topo, NodeId src, NodeId dst, std::size_t k,
    const std::unordered_set<LinkId>& banned_links = {},
    std::vector<LinkId>* touched_links = nullptr);

/// Append-only intern table for paths. Interning the same link sequence
/// twice yields the same PathId, and `path(id)` references are stable for
/// the lifetime of the pool (deque storage never relocates elements), so the
/// control plane can hold `const Path*` across rebuilds on one topology.
class PathPool {
 public:
  PathId intern(Path path);

  [[nodiscard]] const Path& path(PathId id) const {
    assert(id.valid() && id.value() < paths_.size());
#ifndef NDEBUG
    // A stale id outlived a clear() (topology switch): resolving it would
    // silently return some other topology's path. Debug builds abort here;
    // release keeps the historical unchecked-index behavior.
    assert(id.debug_generation() == generation_ &&
           "stale PathId resolved after PathPool::clear (topology switch)");
#endif
    return paths_[id.value()];
  }
  [[nodiscard]] std::size_t size() const { return paths_.size(); }

  /// Drops every interned path; outstanding ids become invalid (and debug
  /// builds assert if one is later resolved — see generation()). Only called
  /// when the routing graph switches to a different topology.
  void clear();

  /// Bumped by every clear(); ids minted before the bump are stale. Debug
  /// builds stamp the generation into each returned PathId.
  [[nodiscard]] std::uint32_t generation() const { return generation_; }

 private:
  std::deque<Path> paths_;
  // Hash of the link sequence → pool ids with that hash (collisions resolved
  // by full sequence equality in intern()).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_;
  std::uint32_t generation_ = 0;
};

/// Non-owning view of one host pair's candidate paths: an id vector in the
/// routing table plus the pool that resolves them. Indexing returns the
/// interned `const Path&` (pool storage is stable), so existing callers that
/// range-for over candidates and keep `&path` work unchanged. The view
/// itself tracks the live table: after a rebuild it sees the new candidate
/// set; call `materialize()` to snapshot instead.
class PathSet {
 public:
  PathSet(const std::vector<PathId>* ids, const PathPool* pool)
      : ids_(ids), pool_(pool) {}

  [[nodiscard]] std::size_t size() const { return ids_->size(); }
  [[nodiscard]] bool empty() const { return ids_->empty(); }
  [[nodiscard]] const Path& operator[](std::size_t i) const {
    return pool_->path((*ids_)[i]);
  }
  [[nodiscard]] PathId id(std::size_t i) const { return (*ids_)[i]; }
  [[nodiscard]] const std::vector<PathId>& ids() const { return *ids_; }
  [[nodiscard]] const PathPool& pool() const { return *pool_; }

  /// Deep copy of the current candidates; survives later rebuilds that
  /// shrink or reorder the live set.
  [[nodiscard]] std::vector<Path> materialize() const;

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Path;
    using difference_type = std::ptrdiff_t;
    using pointer = const Path*;
    using reference = const Path&;

    const Path& operator*() const { return set_->operator[](i_); }
    const Path* operator->() const { return &**this; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      auto copy = *this;
      ++i_;
      return copy;
    }
    friend bool operator==(const const_iterator&, const const_iterator&) =
        default;

   private:
    friend class PathSet;
    const_iterator(const PathSet* set, std::size_t i) : set_(set), i_(i) {}
    const PathSet* set_;
    std::size_t i_;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, ids_->size()}; }

 private:
  const std::vector<PathId>* ids_;
  const PathPool* pool_;
};

/// How rebuild() reacts to a banned-set change on an unchanged topology.
enum class RebuildMode : std::uint8_t {
  /// Recompute only host pairs a newly banned/restored link can affect
  /// (reverse index + BFS hop bound); the default and byte-identical to
  /// kFull — proven by the differential tests.
  kIncremental,
  /// Legacy behavior: re-run Yen for every host pair. Kept as the baseline
  /// the differential tests and the routing_scaling bench compare against.
  kFull,
};

/// When a RoutingGraph computes each host pair's candidates.
enum class BuildMode : std::uint8_t {
  /// Classic behavior: every pair Yen-computed at construction / rebuild.
  kEager,
  /// Pairs computed on first query; rebuild() invalidates affected
  /// materialized pairs instead of recomputing them. Identical observable
  /// results (per-pair Yen is pure in topology + banned set), proven by the
  /// differential tests in tests/net/test_routing_lazy.cpp.
  kLazy,
};

/// Observability for rebuild work (the routing_scaling bench reports the
/// recomputed/reused split per failure event).
struct RoutingCounters {
  std::uint64_t full_rebuilds = 0;
  std::uint64_t incremental_rebuilds = 0;
  std::uint64_t pairs_recomputed = 0;
  std::uint64_t pairs_reused = 0;
  /// rebuild() calls that were no-op deltas (same topology, same banned set)
  /// and returned without touching any state.
  std::uint64_t noop_rebuilds = 0;
  /// Lazy mode: materialized pairs dropped by a rebuild delta (recomputed
  /// only if queried again).
  std::uint64_t pairs_invalidated = 0;
  /// Lazy mode: pairs computed on first query (subset of pairs_recomputed).
  std::uint64_t lazy_materializations = 0;
};

/// Precomputed k-shortest paths for every host pair. The SDN topology
/// service rebuilds it when the physical topology changes (link failure);
/// incremental mode touches only affected pairs.
class RoutingGraph {
 public:
  /// kEager computes every pair up front (pass `pool` to fan the per-pair
  /// Yen runs across worker threads; interning stays on this thread in
  /// canonical slot order, so the result — including PathId values — is
  /// byte-identical to a serial build). kLazy defers each pair to its first
  /// query and ignores `pool`.
  explicit RoutingGraph(const Topology& topo, std::size_t k,
                        BuildMode build = BuildMode::kEager,
                        util::ThreadPool* pool = nullptr);

  /// Equal-candidate path set for an ordered host pair; non-empty for every
  /// connected pair. In lazy mode this materializes the pair on first use.
  /// Precondition: both are hosts in this topology (asserted
  /// in debug; release returns an empty set — use has_paths()/is_host_pair()
  /// to distinguish "partitioned" from "not a host").
  [[nodiscard]] PathSet paths(NodeId src_host, NodeId dst_host) const;

  /// True iff both nodes are hosts of the current topology (a valid key for
  /// the table, whether or not it currently has candidates).
  [[nodiscard]] bool is_host_pair(NodeId src_host, NodeId dst_host) const;

  /// True iff the ordered pair is a host pair with at least one cached path
  /// (false means partitioned — or not hosts at all; see is_host_pair()).
  /// In lazy mode this materializes the pair on first use.
  [[nodiscard]] bool has_paths(NodeId src_host, NodeId dst_host) const;

  /// Computes every not-yet-materialized pair. With a thread pool, per-pair
  /// Yen runs execute concurrently into private scratch and are interned on
  /// the calling thread in canonical slot order — the PathId sequence (part
  /// of the determinism contract) is identical to computing the same pairs
  /// serially. Without one (or with a single-threaded pool), runs serially.
  void materialize_all(util::ThreadPool* pool = nullptr);

  /// Ordered host pairs whose candidates are currently computed. Equals the
  /// full pair count for an eager graph; grows with queries in lazy mode.
  [[nodiscard]] std::size_t pairs_materialized() const {
    return materialized_count_;
  }
  [[nodiscard]] BuildMode build_mode() const { return build_; }

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const PathPool& pool() const { return pool_; }
  [[nodiscard]] const RoutingCounters& counters() const { return counters_; }

  /// Interns an externally built path (e.g. composed rack chains) into the
  /// shared pool so the rest of the control plane can pass ids around.
  PathId intern(Path path) { return pool_.intern(std::move(path)); }
  [[nodiscard]] const Path& path(PathId id) const { return pool_.path(id); }

  /// Number of ordered host pairs whose last Yen run *touched* `l` — i.e.
  /// any generated candidate (chosen or not) traversed it. This is the set
  /// an incremental rebuild recomputes when `l` fails; the bench uses it to
  /// pick a worst-case victim link.
  [[nodiscard]] std::size_t pairs_using(LinkId l) const;

  /// Recomputes the table, excluding `banned_links` (failed links) from
  /// every path — the controller's topology-update service calls this on
  /// link-failure/restore events. kIncremental recomputes (lazy: invalidates)
  /// only pairs the banned-set delta can affect; a different/resized
  /// topology always forces a full rebuild (and invalidates pool ids). A
  /// no-op delta (same topology, same banned set) returns immediately,
  /// bumping only the noop_rebuilds counter.
  void rebuild(const Topology& topo,
               const std::unordered_set<LinkId>& banned_links = {},
               RebuildMode mode = RebuildMode::kIncremental);

  /// Serializes the routing state for snapshots (section version
  /// kStateVersion): per-pair candidate link chains in slot order plus the
  /// banned set (sorted). Chains — not raw pool ids — keep the section
  /// independent of interning order, which in lazy mode depends on query
  /// order; every unmaterialized pair is materialized first (pure per-pair
  /// computation, so this cannot perturb behavior), making lazy, eager, and
  /// parallel-built graphs byte-identical here.
  void encode_state(sim::StateEncoder& enc) const;

  /// Leading u32 of the encode_state section; bumped when the routing
  /// section layout changes (v2: slot-order link chains replaced the v1
  /// pool-id dump — see docs/checkpoint.md).
  static constexpr std::uint32_t kStateVersion = 2;

  /// Rebuild-work counters, serialized as their own snapshot section:
  /// contracted-identical arms (incremental vs. full rebuild) agree on
  /// encode_state but legitimately differ here, so divergence bisection
  /// compares behavioral sections only (see Snapshot::describe_divergence).
  void encode_counters(sim::StateEncoder& enc) const;

 private:
  static constexpr std::uint32_t kNotHost =
      std::numeric_limits<std::uint32_t>::max();

  /// One pair's Yen result before interning: private scratch a worker thread
  /// can fill without touching shared graph state. `touched` is sorted and
  /// deduplicated by compute_pair().
  struct PairScratch {
    std::vector<Path> found;
    std::vector<LinkId> touched;
  };

  [[nodiscard]] std::uint32_t host_slot(NodeId n) const {
    return n.value() < host_slot_.size() ? host_slot_[n.value()] : kNotHost;
  }
  [[nodiscard]] std::size_t pair_slot(std::uint32_t a, std::uint32_t b) const {
    return static_cast<std::size_t>(a) * hosts_.size() + b;
  }
  [[nodiscard]] bool diagonal(std::size_t slot) const {
    return slot / hosts_.size() == slot % hosts_.size();
  }

  void index_topology(const Topology& topo);
  void rebuild_full(const std::unordered_set<LinkId>& banned);
  void rebuild_incremental(const std::unordered_set<LinkId>& banned);
  /// Pure per-pair Yen run into scratch: reads only the topology and the
  /// banned set, writes only `out` — safe to fan across worker threads.
  void compute_pair(std::size_t slot, const std::unordered_set<LinkId>& banned,
                    PairScratch& out) const;
  /// Interns a scratch result and installs it (PathId assignment happens
  /// here, on the calling thread — never on workers). const because it
  /// mutates only the lazy-cache members below.
  void commit_pair(std::size_t slot, PairScratch&& scratch) const;
  /// compute_pair + commit_pair for one slot.
  void recompute_pair(std::size_t slot,
                      const std::unordered_set<LinkId>& banned) const;
  /// Lazy mode: drops a materialized pair's candidates (the next query
  /// recomputes them under the then-current banned set). Keeps the stored
  /// touched union as the diff witness for the eventual re-commit.
  void invalidate_pair(std::size_t slot);
  /// Materializes `slot` if it is an unmaterialized off-diagonal pair.
  void ensure_pair(std::size_t slot) const;
  /// Replaces a pair's candidates and touched-link union, updating the
  /// link → pairs reverse index by diffing old and new unions. `touched`
  /// must be sorted and deduplicated. const: lazy-cache members only.
  void set_pair(std::size_t slot, std::vector<PathId> ids,
                std::vector<LinkId> touched) const;
  /// Hop-count BFS from `origin` over non-banned links; `reverse` walks
  /// links backwards (distance *to* origin). Fills `dist` (kUnreachable for
  /// disconnected nodes).
  void bfs_hops(NodeId origin, bool reverse,
                const std::unordered_set<LinkId>& banned,
                std::vector<std::uint32_t>& dist) const;

  // pythia-lint: allow(snapshot-skip, group) construction-time derivations
  // of the (fingerprinted) topology: wiring, host maps, reverse adjacency,
  // and sizes rebuild identically in the restored process. k_ and banned_
  // ARE encoded.
  const Topology* topo_ = nullptr;
  std::size_t k_ = 0;
  BuildMode build_ = BuildMode::kEager;
  std::vector<NodeId> hosts_;
  std::vector<std::uint32_t> host_slot_;  // node id → host index or kNotHost
  std::vector<std::vector<LinkId>> in_links_;  // reverse adjacency for BFS
  std::unordered_set<LinkId> banned_;          // banned set of last rebuild
  std::size_t node_count_ = 0;
  std::size_t link_count_ = 0;

  // Lazy cache: logically-const queries (paths/has_paths/encode_state)
  // materialize pairs on demand, so these are mutable. Every materialized
  // entry equals the pure per-pair Yen result under the current banned set —
  // query order cannot change what is stored, only when.
  // pythia-lint: allow(snapshot-skip, group) the touched unions, reverse
  // index, and materialization flags are re-derived from the encoded pool_
  // and table_ on restore; by the invariant above their contents are a pure
  // function of what is stored, never of query order.
  mutable PathPool pool_;
  // Dense table: slot = host_slot(src) * H + host_slot(dst).
  mutable std::vector<std::vector<PathId>> table_;
  // Per-slot sorted union of links touched by the pair's last Yen run.
  mutable std::vector<std::vector<LinkId>> pair_links_;
  // Reverse index: link id → slots whose last Yen run touched it.
  mutable std::vector<std::vector<std::uint32_t>> link_pairs_;
  // Per-slot flag: candidates computed and current (off-diagonal only).
  mutable std::vector<char> materialized_;
  mutable std::size_t materialized_count_ = 0;
  mutable RoutingCounters counters_;
};

}  // namespace pythia::net
