// Multi-path routing: hop-count Dijkstra, Yen's k-shortest paths, and the
// RoutingGraph cache the controller keeps per host pair (paper §IV: computed
// at startup, recomputed only on topology-change events — off the data path).
//
// Paths are interned in a PathPool: the graph stores PathId handles instead
// of link-vector copies, a reverse index LinkId → {host pairs using it} lets
// rebuild() recompute only the pairs a failed/restored link can affect, and
// the control plane (controller/allocator) passes ids on the per-flow hot
// path instead of copying/comparing link vectors.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iterator>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/topology.hpp"
#include "net/types.hpp"

namespace pythia::sim {
class StateEncoder;
}

namespace pythia::net {

/// A loop-free path as a link chain; endpoints are implied by the links.
struct Path {
  std::vector<LinkId> links;

  [[nodiscard]] std::size_t hops() const { return links.size(); }
  friend bool operator==(const Path&, const Path&) = default;
};

/// Shortest path by hop count with deterministic tie-breaking (smaller link
/// ids win). `banned_links` / `banned_nodes` support Yen's spur computation
/// and failure simulation. Returns nullopt when disconnected.
std::optional<Path> shortest_path(
    const Topology& topo, NodeId src, NodeId dst,
    const std::unordered_set<LinkId>& banned_links = {},
    const std::unordered_set<NodeId>& banned_nodes = {});

/// Yen's algorithm: up to `k` loop-free shortest paths in nondecreasing
/// hop-count order (deterministic ordering among equal-length paths).
/// `banned_links` are excluded entirely (failed links). When
/// `touched_links` is non-null, every link of every candidate path the run
/// generated (chosen or not) is appended to it — the routing graph's
/// incremental rebuild keys its reverse index on this union, because a
/// banned link that appears only in an *unchosen* candidate can still flip
/// the deterministic tie-break of a later spur computation.
std::vector<Path> k_shortest_paths(
    const Topology& topo, NodeId src, NodeId dst, std::size_t k,
    const std::unordered_set<LinkId>& banned_links = {},
    std::vector<LinkId>* touched_links = nullptr);

/// Append-only intern table for paths. Interning the same link sequence
/// twice yields the same PathId, and `path(id)` references are stable for
/// the lifetime of the pool (deque storage never relocates elements), so the
/// control plane can hold `const Path*` across rebuilds on one topology.
class PathPool {
 public:
  PathId intern(Path path);

  [[nodiscard]] const Path& path(PathId id) const {
    assert(id.valid() && id.value() < paths_.size());
    return paths_[id.value()];
  }
  [[nodiscard]] std::size_t size() const { return paths_.size(); }

  /// Drops every interned path; outstanding ids become invalid. Only called
  /// when the routing graph switches to a different topology.
  void clear();

 private:
  std::deque<Path> paths_;
  // Hash of the link sequence → pool ids with that hash (collisions resolved
  // by full sequence equality in intern()).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_;
};

/// Non-owning view of one host pair's candidate paths: an id vector in the
/// routing table plus the pool that resolves them. Indexing returns the
/// interned `const Path&` (pool storage is stable), so existing callers that
/// range-for over candidates and keep `&path` work unchanged. The view
/// itself tracks the live table: after a rebuild it sees the new candidate
/// set; call `materialize()` to snapshot instead.
class PathSet {
 public:
  PathSet(const std::vector<PathId>* ids, const PathPool* pool)
      : ids_(ids), pool_(pool) {}

  [[nodiscard]] std::size_t size() const { return ids_->size(); }
  [[nodiscard]] bool empty() const { return ids_->empty(); }
  [[nodiscard]] const Path& operator[](std::size_t i) const {
    return pool_->path((*ids_)[i]);
  }
  [[nodiscard]] PathId id(std::size_t i) const { return (*ids_)[i]; }
  [[nodiscard]] const std::vector<PathId>& ids() const { return *ids_; }
  [[nodiscard]] const PathPool& pool() const { return *pool_; }

  /// Deep copy of the current candidates; survives later rebuilds that
  /// shrink or reorder the live set.
  [[nodiscard]] std::vector<Path> materialize() const;

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Path;
    using difference_type = std::ptrdiff_t;
    using pointer = const Path*;
    using reference = const Path&;

    const Path& operator*() const { return set_->operator[](i_); }
    const Path* operator->() const { return &**this; }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    const_iterator operator++(int) {
      auto copy = *this;
      ++i_;
      return copy;
    }
    friend bool operator==(const const_iterator&, const const_iterator&) =
        default;

   private:
    friend class PathSet;
    const_iterator(const PathSet* set, std::size_t i) : set_(set), i_(i) {}
    const PathSet* set_;
    std::size_t i_;
  };

  [[nodiscard]] const_iterator begin() const { return {this, 0}; }
  [[nodiscard]] const_iterator end() const { return {this, ids_->size()}; }

 private:
  const std::vector<PathId>* ids_;
  const PathPool* pool_;
};

/// How rebuild() reacts to a banned-set change on an unchanged topology.
enum class RebuildMode : std::uint8_t {
  /// Recompute only host pairs a newly banned/restored link can affect
  /// (reverse index + BFS hop bound); the default and byte-identical to
  /// kFull — proven by the differential tests.
  kIncremental,
  /// Legacy behavior: re-run Yen for every host pair. Kept as the baseline
  /// the differential tests and the routing_scaling bench compare against.
  kFull,
};

/// Observability for rebuild work (the routing_scaling bench reports the
/// recomputed/reused split per failure event).
struct RoutingCounters {
  std::uint64_t full_rebuilds = 0;
  std::uint64_t incremental_rebuilds = 0;
  std::uint64_t pairs_recomputed = 0;
  std::uint64_t pairs_reused = 0;
};

/// Precomputed k-shortest paths for every host pair. The SDN topology
/// service rebuilds it when the physical topology changes (link failure);
/// incremental mode touches only affected pairs.
class RoutingGraph {
 public:
  RoutingGraph(const Topology& topo, std::size_t k);

  /// Equal-candidate path set for an ordered host pair; non-empty for every
  /// connected pair. Precondition: both are hosts in this topology (asserted
  /// in debug; release returns an empty set — use has_paths()/is_host_pair()
  /// to distinguish "partitioned" from "not a host").
  [[nodiscard]] PathSet paths(NodeId src_host, NodeId dst_host) const;

  /// True iff both nodes are hosts of the current topology (a valid key for
  /// the table, whether or not it currently has candidates).
  [[nodiscard]] bool is_host_pair(NodeId src_host, NodeId dst_host) const;

  /// True iff the ordered pair is a host pair with at least one cached path
  /// (false means partitioned — or not hosts at all; see is_host_pair()).
  [[nodiscard]] bool has_paths(NodeId src_host, NodeId dst_host) const;

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] const Topology& topology() const { return *topo_; }
  [[nodiscard]] const PathPool& pool() const { return pool_; }
  [[nodiscard]] const RoutingCounters& counters() const { return counters_; }

  /// Interns an externally built path (e.g. composed rack chains) into the
  /// shared pool so the rest of the control plane can pass ids around.
  PathId intern(Path path) { return pool_.intern(std::move(path)); }
  [[nodiscard]] const Path& path(PathId id) const { return pool_.path(id); }

  /// Number of ordered host pairs whose last Yen run *touched* `l` — i.e.
  /// any generated candidate (chosen or not) traversed it. This is the set
  /// an incremental rebuild recomputes when `l` fails; the bench uses it to
  /// pick a worst-case victim link.
  [[nodiscard]] std::size_t pairs_using(LinkId l) const;

  /// Recomputes the table, excluding `banned_links` (failed links) from
  /// every path — the controller's topology-update service calls this on
  /// link-failure/restore events. kIncremental recomputes only pairs the
  /// banned-set delta can affect; a different/resized topology always forces
  /// a full rebuild (and invalidates pool ids).
  void rebuild(const Topology& topo,
               const std::unordered_set<LinkId>& banned_links = {},
               RebuildMode mode = RebuildMode::kIncremental);

  /// Serializes the routing state for snapshots: every interned path (in
  /// id order — interning order is part of the determinism contract), the
  /// per-pair candidate tables, and the banned set (sorted).
  void encode_state(sim::StateEncoder& enc) const;

  /// Rebuild-work counters, serialized as their own snapshot section:
  /// contracted-identical arms (incremental vs. full rebuild) agree on
  /// encode_state but legitimately differ here, so divergence bisection
  /// compares behavioral sections only (see Snapshot::describe_divergence).
  void encode_counters(sim::StateEncoder& enc) const;

 private:
  static constexpr std::uint32_t kNotHost =
      std::numeric_limits<std::uint32_t>::max();

  [[nodiscard]] std::uint32_t host_slot(NodeId n) const {
    return n.value() < host_slot_.size() ? host_slot_[n.value()] : kNotHost;
  }
  [[nodiscard]] std::size_t pair_slot(std::uint32_t a, std::uint32_t b) const {
    return static_cast<std::size_t>(a) * hosts_.size() + b;
  }

  void index_topology(const Topology& topo);
  void rebuild_full(const std::unordered_set<LinkId>& banned);
  void rebuild_incremental(const std::unordered_set<LinkId>& banned);
  void recompute_pair(std::size_t slot,
                      const std::unordered_set<LinkId>& banned);
  /// Replaces a pair's candidates and touched-link union, updating the
  /// link → pairs reverse index by diffing old and new unions. `touched`
  /// must be sorted and deduplicated.
  void set_pair(std::size_t slot, std::vector<PathId> ids,
                std::vector<LinkId> touched);
  /// Hop-count BFS from `origin` over non-banned links; `reverse` walks
  /// links backwards (distance *to* origin). Fills `dist` (kUnreachable for
  /// disconnected nodes).
  void bfs_hops(NodeId origin, bool reverse,
                const std::unordered_set<LinkId>& banned,
                std::vector<std::uint32_t>& dist) const;

  const Topology* topo_ = nullptr;
  std::size_t k_ = 0;
  PathPool pool_;
  std::vector<NodeId> hosts_;
  std::vector<std::uint32_t> host_slot_;  // node id → host index or kNotHost
  // Dense table: slot = host_slot(src) * H + host_slot(dst).
  std::vector<std::vector<PathId>> table_;
  // Per-slot sorted union of links touched by the pair's last Yen run.
  std::vector<std::vector<LinkId>> pair_links_;
  // Reverse index: link id → slots whose last Yen run touched it.
  std::vector<std::vector<std::uint32_t>> link_pairs_;
  std::vector<std::vector<LinkId>> in_links_;  // reverse adjacency for BFS
  std::unordered_set<LinkId> banned_;          // banned set of last rebuild
  std::size_t node_count_ = 0;
  std::size_t link_count_ = 0;
  RoutingCounters counters_;
};

}  // namespace pythia::net
