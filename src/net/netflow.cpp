#include "net/netflow.hpp"

#include <algorithm>

namespace pythia::net {

void NetFlowProbe::on_bytes_moved(const Fabric& fabric, FlowId flow,
                                  util::Bytes moved, util::SimTime /*from*/,
                                  util::SimTime to) {
  const Flow& f = fabric.flow(flow);
  if (port_filter_ != 0 && f.spec.tuple.src_port != port_filter_) return;
  auto& total = sourced_[f.spec.src];
  total += moved.count();
  auto& curve = curves_[f.spec.src];
  if (!curve.empty() && curve.back().at == to) {
    curve.back().cumulative = util::Bytes{total};
  } else {
    curve.push_back(VolumePoint{to, util::Bytes{total}});
  }
}

void NetFlowProbe::on_flow_completed(const Fabric& fabric, FlowId flow,
                                     util::SimTime /*at*/) {
  const Flow& f = fabric.flow(flow);
  if (port_filter_ != 0 && f.spec.tuple.src_port != port_filter_) return;
  ++flows_observed_;
}

util::Bytes NetFlowProbe::sourced_bytes(NodeId host) const {
  const auto it = sourced_.find(host);
  return it == sourced_.end() ? util::Bytes::zero() : util::Bytes{it->second};
}

const std::vector<VolumePoint>& NetFlowProbe::curve(NodeId host) const {
  const auto it = curves_.find(host);
  return it == curves_.end() ? empty_ : it->second;
}

std::vector<NodeId> NetFlowProbe::observed_sources() const {
  std::vector<NodeId> out;
  out.reserve(curves_.size());
  // pythia-lint: allow(unordered-iter) key collection only; sorted on the
  // next line before anything observes the order
  for (const auto& [host, _] : curves_) out.push_back(host);
  std::sort(out.begin(), out.end());
  return out;
}

double curve_value_at(const std::vector<VolumePoint>& curve, util::SimTime t) {
  if (curve.empty()) return 0.0;
  if (t <= curve.front().at) {
    return t < curve.front().at ? 0.0 : curve.front().cumulative.as_double();
  }
  if (t >= curve.back().at) return curve.back().cumulative.as_double();
  // First point with at >= t.
  const auto it = std::lower_bound(
      curve.begin(), curve.end(), t,
      [](const VolumePoint& p, util::SimTime when) { return p.at < when; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = (hi.at - lo.at).seconds();
  if (span <= 0.0) return hi.cumulative.as_double();
  const double frac = (t - lo.at).seconds() / span;
  return lo.cumulative.as_double() +
         frac * (hi.cumulative.as_double() - lo.cumulative.as_double());
}

util::SimTime curve_time_to_reach(const std::vector<VolumePoint>& curve,
                                  double volume) {
  if (volume <= 0.0) return util::SimTime::zero();
  double prev_v = 0.0;
  util::SimTime prev_t = util::SimTime::zero();
  for (const auto& p : curve) {
    const double v = p.cumulative.as_double();
    if (v >= volume) {
      const double dv = v - prev_v;
      if (dv <= 0.0) return p.at;
      const double frac = (volume - prev_v) / dv;
      const double secs =
          prev_t.seconds() + frac * (p.at - prev_t).seconds();
      return util::SimTime::from_seconds(secs);
    }
    prev_v = v;
    prev_t = p.at;
  }
  return util::SimTime::max();
}

}  // namespace pythia::net
