// ECMP path selection (the paper's baseline and default for non-Pythia
// traffic): hash the 5-tuple, take the hash modulo the number of equal-cost
// candidate paths. Load-unaware by construction — this is exactly what makes
// the Fig. 1b adversarial allocation possible.
#pragma once

#include <cstddef>

#include "net/routing.hpp"
#include "net/types.hpp"

namespace pythia::net {

class EcmpSelector {
 public:
  explicit EcmpSelector(const RoutingGraph& routing) : routing_(&routing) {}

  /// Deterministic hash of the 5-tuple.
  [[nodiscard]] static std::uint64_t hash_tuple(const FiveTuple& t);

  /// Index into an equal-cost path set of size `n`.
  [[nodiscard]] static std::size_t select_index(const FiveTuple& t,
                                                std::size_t n);

  /// The chosen path for a flow between two hosts. Precondition: the pair is
  /// connected (the routing graph has at least one path).
  [[nodiscard]] const Path& select(NodeId src_host, NodeId dst_host,
                                   const FiveTuple& t) const;

  /// Same selection as interned id — the per-flow hot path passes this
  /// around instead of copying link vectors. Same precondition as select().
  [[nodiscard]] PathId select_id(NodeId src_host, NodeId dst_host,
                                 const FiveTuple& t) const;

 private:
  const RoutingGraph* routing_;
};

}  // namespace pythia::net
