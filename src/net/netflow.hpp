// NetFlow-style traffic accounting.
//
// The paper validates prediction timeliness/accuracy (Fig. 5) by deploying
// NetFlow probes on every server, filtering the Hadoop shuffle port (50060),
// and post-processing traces into cumulative per-source-server volume curves.
// This probe observes fabric settle points and records exactly that.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "net/types.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pythia::net {

/// One point of a cumulative-volume time series.
struct VolumePoint {
  util::SimTime at;
  util::Bytes cumulative;
};

class NetFlowProbe final : public FabricObserver {
 public:
  /// Records flows whose 5-tuple src_port matches `port_filter`
  /// (default: the Hadoop shuffle port); 0 records everything.
  explicit NetFlowProbe(std::uint16_t port_filter = kShufflePort)
      : port_filter_(port_filter) {}

  void on_bytes_moved(const Fabric& fabric, FlowId flow, util::Bytes moved,
                      util::SimTime from, util::SimTime to) override;
  void on_flow_completed(const Fabric& fabric, FlowId flow,
                         util::SimTime at) override;

  /// Total matched bytes sourced by a host so far.
  [[nodiscard]] util::Bytes sourced_bytes(NodeId host) const;

  /// Cumulative volume curve for traffic sourced at `host` (monotone,
  /// one point per settle interval in which the host moved bytes).
  [[nodiscard]] const std::vector<VolumePoint>& curve(NodeId host) const;

  /// Hosts that sourced any matched traffic.
  [[nodiscard]] std::vector<NodeId> observed_sources() const;

  [[nodiscard]] std::uint64_t flows_observed() const {
    return flows_observed_;
  }

 private:
  std::uint16_t port_filter_;
  std::unordered_map<NodeId, std::int64_t> sourced_;
  std::unordered_map<NodeId, std::vector<VolumePoint>> curves_;
  std::uint64_t flows_observed_ = 0;
  std::vector<VolumePoint> empty_;
};

/// Linear interpolation over a cumulative curve; clamps outside the range.
[[nodiscard]] double curve_value_at(const std::vector<VolumePoint>& curve,
                                    util::SimTime t);

/// Earliest time at which the curve reaches `volume` bytes; SimTime::max()
/// if it never does.
[[nodiscard]] util::SimTime curve_time_to_reach(
    const std::vector<VolumePoint>& curve, double volume);

}  // namespace pythia::net
