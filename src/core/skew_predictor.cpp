#include "core/skew_predictor.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace pythia::core {

SkewPredictor::SkewPredictor(std::size_t job_serial, std::size_t num_maps,
                             std::size_t num_reducers)
    : job_serial_(job_serial),
      num_maps_(num_maps),
      per_reducer_bytes_(num_reducers, 0.0) {
  assert(num_maps > 0);
  assert(num_reducers > 0);
}

void SkewPredictor::ingest(const ShuffleIntent& intent) {
  if (intent.job_serial != job_serial_) return;
  if (intent.reduce_index >= per_reducer_bytes_.size()) return;
  per_reducer_bytes_[intent.reduce_index] +=
      intent.predicted_wire_bytes.as_double();
  if (!seen_maps_.contains(intent.map_index)) {
    seen_maps_[intent.map_index] = true;
    ++maps_seen_;
  }
}

SkewEstimate SkewPredictor::estimate() const {
  SkewEstimate out;
  out.predicted_final_bytes.resize(per_reducer_bytes_.size(), 0.0);
  if (maps_seen_ == 0) return out;

  const double scale =
      static_cast<double>(num_maps_) / static_cast<double>(maps_seen_);
  for (std::size_t r = 0; r < per_reducer_bytes_.size(); ++r) {
    out.predicted_final_bytes[r] = per_reducer_bytes_[r] * scale;
  }
  const double total = std::accumulate(out.predicted_final_bytes.begin(),
                                       out.predicted_final_bytes.end(), 0.0);
  const double mean =
      total / static_cast<double>(out.predicted_final_bytes.size());
  const auto hottest =
      std::max_element(out.predicted_final_bytes.begin(),
                       out.predicted_final_bytes.end());
  out.hottest_reducer = static_cast<std::size_t>(
      hottest - out.predicted_final_bytes.begin());
  out.skew_factor = mean > 0.0 ? *hottest / mean : 1.0;
  out.maps_observed_fraction =
      static_cast<double>(maps_seen_) / static_cast<double>(num_maps_);
  return out;
}

}  // namespace pythia::core
