#include "core/pythia_system.hpp"

#include <algorithm>

namespace pythia::core {

PythiaSystem::PythiaSystem(sim::Simulation& sim,
                           hadoop::MapReduceEngine& engine,
                           sdn::Controller& controller, PythiaConfig cfg)
    : controller_(&controller),
      cfg_(cfg),
      allocator_(std::make_unique<Allocator>(controller, cfg.allocator)),
      collector_(std::make_unique<Collector>(sim, *allocator_,
                                             cfg.collector)),
      instrumentation_(std::make_unique<Instrumentation>(
          sim, *collector_, cfg.instrumentation)) {
  engine.add_observer(this);
}

void PythiaSystem::on_map_output_ready(
    const hadoop::MapOutputNotice& notice) {
  instrumentation_->on_map_output_ready(notice);
}

void PythiaSystem::on_reducer_started(std::size_t job_serial,
                                      std::size_t reduce_index,
                                      net::NodeId server, util::SimTime at) {
  instrumentation_->on_reducer_started(job_serial, reduce_index, server, at);
}

void PythiaSystem::on_fetch_started(std::size_t /*job_serial*/,
                                    const hadoop::FetchRecord& fetch,
                                    net::FlowId flow) {
  if (!cfg_.weighted_flows || !flow.valid() || !fetch.remote) return;
  // Proportional allocation: a flow feeding a reducer server with k times
  // the average outstanding volume gets ~k times the bandwidth share.
  const double mean =
      collector_->mean_destination_outstanding().as_double();
  if (mean <= 0.0) return;
  const double dst =
      collector_->destination_outstanding(fetch.dst_server).as_double();
  const double weight =
      std::clamp(dst / mean, cfg_.min_flow_weight, cfg_.max_flow_weight);
  controller_->fabric().set_flow_weight(flow, weight);
}

void PythiaSystem::on_fetch_completed(std::size_t /*job_serial*/,
                                      const hadoop::FetchRecord& fetch) {
  collector_->fetch_completed(fetch.src_server, fetch.dst_server,
                              fetch.payload);
}

}  // namespace pythia::core
