#include "core/pythia_system.hpp"

#include <algorithm>

namespace pythia::core {

namespace {

/// The watchdog's staleness clock must tolerate the configured prediction
/// pipeline latency: decode + management hop + any deliberate ablation delay
/// + the fault channel's deterministic base delay. Only time *beyond* this is
/// evidence of a broken channel.
WatchdogConfig widen_for_pipeline(WatchdogConfig wd,
                                  const InstrumentationConfig& inst) {
  wd.staleness_threshold += inst.decode_delay + inst.management_latency +
                            inst.extra_delay + inst.channel.base_delay +
                            inst.channel.jitter;
  return wd;
}

}  // namespace

PythiaSystem::PythiaSystem(sim::Simulation& sim,
                           hadoop::MapReduceEngine& engine,
                           sdn::Controller& controller, PythiaConfig cfg)
    : controller_(&controller),
      cfg_(cfg),
      allocator_(std::make_unique<Allocator>(controller, cfg.allocator)),
      collector_(std::make_unique<Collector>(sim, *allocator_,
                                             cfg.collector)),
      instrumentation_(std::make_unique<Instrumentation>(
          sim, *collector_, cfg.instrumentation)),
      watchdog_(std::make_unique<ControlPlaneWatchdog>(
          sim, controller, *allocator_,
          widen_for_pipeline(cfg.watchdog, cfg.instrumentation))) {
  collector_->set_watchdog(watchdog_.get());
  engine.add_observer(this);
}

void PythiaSystem::on_map_output_ready(
    const hadoop::MapOutputNotice& notice) {
  // The notice is engine-local (it cannot be lost), so it doubles as the
  // watchdog's "a notification is now owed" signal.
  watchdog_->note_emission(notice.at);
  instrumentation_->on_map_output_ready(notice);
  watchdog_->evaluate();
}

void PythiaSystem::on_reducer_started(std::size_t job_serial,
                                      std::size_t reduce_index,
                                      net::NodeId server, util::SimTime at) {
  instrumentation_->on_reducer_started(job_serial, reduce_index, server, at);
}

void PythiaSystem::on_fetch_started(std::size_t /*job_serial*/,
                                    const hadoop::FetchRecord& fetch,
                                    net::FlowId flow) {
  watchdog_->evaluate();
  if (!cfg_.weighted_flows || !flow.valid() || !fetch.remote) return;
  // During watchdog fallback the prediction state is untrustworthy — leave
  // flows at their fair-share weight.
  if (!watchdog_->engaged()) return;
  // Proportional allocation: a flow feeding a reducer server with k times
  // the average outstanding volume gets ~k times the bandwidth share.
  const double mean =
      collector_->mean_destination_outstanding().as_double();
  if (mean <= 0.0) return;
  const double dst =
      collector_->destination_outstanding(fetch.dst_server).as_double();
  const double weight =
      std::clamp(dst / mean, cfg_.min_flow_weight, cfg_.max_flow_weight);
  controller_->fabric().set_flow_weight(flow, weight);
}

void PythiaSystem::on_fetch_completed(std::size_t /*job_serial*/,
                                      const hadoop::FetchRecord& fetch) {
  collector_->fetch_completed(fetch.src_server, fetch.dst_server,
                              fetch.payload);
  watchdog_->evaluate();
}

void PythiaSystem::on_job_completed(std::size_t job_serial,
                                    const hadoop::JobResult& /*result*/) {
  collector_->job_completed(job_serial);
}

void PythiaSystem::encode_state(sim::StateEncoder& enc) const {
  instrumentation_->encode_state(enc);
  collector_->encode_state(enc);
  allocator_->encode_state(enc);
  watchdog_->encode_state(enc);
}

}  // namespace pythia::core
