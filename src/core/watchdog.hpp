// Control-plane health watchdog.
//
// The paper's implicit robustness guarantee is "never do worse than ECMP":
// Pythia only helps if its predictions are fresh and its rules actually make
// it into the switches. This watchdog observes both halves of the control
// plane — prediction notifications (instrumentation → collector over the
// lossy management channel) and rule installs (controller → switches) — and
// when either is degraded past a threshold it *falls the system back to pure
// ECMP*: the allocator stops installing and every host-pair rule is cleared.
// When the control plane recovers and stays healthy for a grace period, the
// watchdog re-engages Pythia and the allocator re-installs live aggregates.
//
// Evaluation is lazy (driven from engine-side observer events, which are
// local to the slaves and cannot be lost), so the watchdog schedules no
// events of its own and a healthy run is byte-identical with or without it.
#pragma once

#include <cstdint>

#include "sim/simulation.hpp"
#include "util/time.hpp"

namespace pythia::sdn {
class Controller;
}

namespace pythia::sim {
class StateEncoder;
}

namespace pythia::core {

class Allocator;

struct WatchdogConfig {
  bool enabled = true;
  /// A spill emission left unanswered by any collector-side notification for
  /// this long means the prediction channel is effectively dead. The
  /// PythiaSystem adds the configured instrumentation pipeline latency
  /// (decode + management + extra delay) on top, so deliberately slowed
  /// arms (FlowComb ablations, lead-time sweeps) never trip it.
  util::Duration staleness_threshold = util::Duration::seconds_i(5);
  /// Install-attempt failure fraction over the sampling window that trips
  /// the fallback, given at least `min_install_samples` attempts. The bar is
  /// deliberately high: with exponential-backoff retries a 50%-lossy install
  /// channel still lands most rules, and falling back would forfeit a real
  /// speedup. Only a mostly-dead channel is worth abandoning.
  double install_failure_threshold = 0.75;
  std::size_t min_install_samples = 8;
  util::Duration failure_window = util::Duration::seconds_i(10);
  /// Healthy streak required before re-engaging Pythia.
  util::Duration recovery_grace = util::Duration::seconds_i(5);
  /// Circuit breaker: after this many fallbacks the watchdog stops
  /// re-engaging — a control plane that keeps flapping is worse than plain
  /// ECMP, because every re-engagement reroutes flows it will soon strand.
  /// 0 = re-engage forever.
  std::size_t max_fallbacks = 2;
};

class ControlPlaneWatchdog {
 public:
  ControlPlaneWatchdog(sim::Simulation& sim, sdn::Controller& controller,
                       Allocator& allocator, WatchdogConfig cfg = {});

  /// Engine-side: a map spill happened, so a notification is now expected on
  /// the management channel.
  void note_emission(util::SimTime at);
  /// Collector-side: a notification (intent or reducer location) arrived.
  void note_notification(util::SimTime at);

  /// Re-assesses health and performs fallback / re-engagement transitions.
  /// Called from engine observer events; cheap when nothing changed.
  void evaluate();

  /// True while Pythia is driving the network; false during ECMP fallback.
  [[nodiscard]] bool engaged() const { return engaged_; }
  [[nodiscard]] std::uint64_t fallbacks() const { return fallbacks_; }
  [[nodiscard]] std::uint64_t reengagements() const { return reengagements_; }

  // Exposed for tests and the control-plane bench.
  [[nodiscard]] bool notifications_stale() const;
  [[nodiscard]] double recent_install_failure_rate() const;

  [[nodiscard]] const WatchdogConfig& config() const { return cfg_; }

  /// Serializes watchdog state for snapshots: engagement/breaker state, the
  /// staleness markers, and the failure-rate sampling window baselines.
  void encode_state(sim::StateEncoder& enc) const;

 private:
  [[nodiscard]] bool install_failures_excessive() const;
  void refresh_failure_window();

  // pythia-lint: allow(snapshot-skip, group) wiring and config identity:
  // pointers are re-connected by the restore factory and cfg_ is covered by
  // the scenario fingerprint.
  sim::Simulation* sim_;
  sdn::Controller* controller_;
  Allocator* allocator_;
  WatchdogConfig cfg_;

  bool engaged_ = true;
  /// Oldest emission not yet answered by any notification; -1 when caught up.
  util::SimTime pending_since_{-1};
  util::SimTime last_notification_{-1};
  util::SimTime healthy_since_{-1};

  /// Failure-rate sampling window over the controller's *intent-weighted*
  /// install counters: batched rules weigh by coalesced intent count, so a
  /// failed batch of 30 counts as 30 lost predictions, not one event.
  util::SimTime window_start_{-1};
  std::uint64_t window_base_attempts_ = 0;
  std::uint64_t window_base_failures_ = 0;
  std::uint64_t window_base_table_rejects_ = 0;

  std::uint64_t fallbacks_ = 0;
  std::uint64_t reengagements_ = 0;
};

}  // namespace pythia::core
