#include "core/instrumentation.hpp"

#include "core/collector.hpp"
#include "sim/snapshot.hpp"
#include "util/log.hpp"

namespace pythia::core {

Instrumentation::Instrumentation(sim::Simulation& sim, Collector& collector,
                                 InstrumentationConfig cfg)
    : sim_(&sim),
      collector_(&collector),
      cfg_(cfg),
      channel_(sim, "ctl.intent", cfg.channel) {}

void Instrumentation::on_map_output_ready(
    const hadoop::MapOutputNotice& notice) {
  ++decodes_;
  const util::Duration delivery = cfg_.decode_delay + cfg_.management_latency +
                                  cfg_.extra_delay;
  const util::SimTime emit_at = notice.at + delivery;

  std::vector<ShuffleIntent> intents;
  intents.reserve(notice.per_reducer_payload.size());
  for (std::size_t r = 0; r < notice.per_reducer_payload.size(); ++r) {
    ShuffleIntent intent;
    intent.job_serial = notice.job_serial;
    intent.map_index = notice.map_index;
    intent.reduce_index = r;
    intent.src_server = notice.server;
    intent.predicted_wire_bytes =
        cfg_.overhead.predict_wire_bytes(notice.per_reducer_payload[r]);
    intent.emitted_at = emit_at;
    intents.push_back(intent);
  }
  ++intents_;
  control_bytes_ +=
      intent_message_bytes(notice.per_reducer_payload.size());

  // Each intent is its own message on the management network and rides
  // through the fault channel independently (per-message drops, not
  // per-spill). With a transparent channel the sends are synchronous and the
  // event ordering matches the pre-fault-layer behaviour exactly.
  sim_->at(emit_at, [this, intents = std::move(intents)] {
    for (const auto& intent : intents) {
      channel_.send([this, intent] { collector_->ingest(intent); });
    }
  });
}

void Instrumentation::on_reducer_started(std::size_t job_serial,
                                         std::size_t reduce_index,
                                         net::NodeId server,
                                         util::SimTime /*at*/) {
  // Reducer-initialization events also travel over the management network.
  control_bytes_ += util::Bytes{32};
  sim_->after(cfg_.management_latency,
              [this, job_serial, reduce_index, server] {
                channel_.send([this, job_serial, reduce_index, server] {
                  collector_->reducer_located(job_serial, reduce_index, server);
                });
              });
}

void Instrumentation::encode_state(sim::StateEncoder& enc) const {
  enc.put_u64(intents_);
  enc.put_u64(decodes_);
  enc.put_i64(control_bytes_.count());
  channel_.encode_state(enc);
}

}  // namespace pythia::core
