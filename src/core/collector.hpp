// Pythia prediction-notification collector (runs beside the controller).
//
// Responsibilities from the paper:
//  * receive per-(map, reducer) shuffle intents from every slave's
//    instrumentation process;
//  * hold intents whose reducer has not started yet ("unknown destination")
//    and complete them from reducer-initialization events;
//  * aggregate all flows from one mapper server to one reducer server into a
//    single flow entry that sums constituent sizes (dst TCP ports are
//    unknowable in advance, so rules must match at server granularity);
//  * hand batches of aggregate updates to the flow-allocation module,
//    largest first (first-fit decreasing).
//
// The collector sits at the receiving end of a lossy management network
// (sim::FaultChannel), so it also defends itself: held intents expire after a
// TTL (a reducer-initialization event may have been lost, or the reducer may
// never launch), and a job's residue is purged when the job completes.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "core/prediction.hpp"
#include "sim/simulation.hpp"

namespace pythia::sim {
class StateEncoder;
}

namespace pythia::core {

class Allocator;
class ControlPlaneWatchdog;

struct CollectorConfig {
  /// Aggregation window: intents arriving within it are allocated jointly
  /// (the paper's heuristic "jointly allocates sets of predicted flows").
  util::Duration batch_window = util::Duration::millis(100);
  /// Flow criticality (the paper's differentiator over FlowComb): order
  /// batch allocation by how loaded the *destination reducer server* is —
  /// flows feeding the barrier-critical reducer get first pick of paths.
  /// When false, plain first-fit-decreasing by aggregate volume.
  bool criticality_aware = true;
  /// Held-intent TTL: an intent whose reducer location never materializes
  /// (lost reducer-init message, reducer never launched) is dropped this
  /// long after arrival. Purging is lazy — no events are scheduled — so a
  /// fault-free run whose reducers start within the TTL is byte-identical
  /// to one without the TTL. Zero disables expiry.
  util::Duration intent_ttl = util::Duration::seconds_i(600);
};

class Collector {
 public:
  Collector(sim::Simulation& sim, Allocator& allocator,
            CollectorConfig cfg = {});

  /// Intent from an instrumentation process; dst may be unknown yet.
  void ingest(const ShuffleIntent& intent);

  /// Reducer-initialization event: resolves pending intents for the reducer.
  void reducer_located(std::size_t job_serial, std::size_t reduce_index,
                       net::NodeId server);

  /// A shuffle fetch finished; retires predicted volume so the allocator's
  /// outstanding-load bookkeeping tracks reality.
  void fetch_completed(net::NodeId src_server, net::NodeId dst_server,
                       util::Bytes payload);

  /// Job teardown: reclaims held intents and reducer locations for the job
  /// so intents for never-launched reducers cannot leak across jobs.
  void job_completed(std::size_t job_serial);

  /// Health-watchdog hookup: every delivered notification is reported so the
  /// watchdog can track control-plane staleness.
  void set_watchdog(ControlPlaneWatchdog* watchdog) { watchdog_ = watchdog; }

  /// Outstanding predicted volume destined to a server (criticality proxy:
  /// the most-loaded reducer server gates the shuffle barrier).
  [[nodiscard]] util::Bytes destination_outstanding(net::NodeId dst) const;
  /// Mean outstanding volume across destinations that currently have any.
  [[nodiscard]] util::Bytes mean_destination_outstanding() const;

  // --- accounting ---
  [[nodiscard]] std::uint64_t intents_received() const { return received_; }
  [[nodiscard]] std::uint64_t intents_held_for_reducer() const {
    return held_;
  }
  [[nodiscard]] std::uint64_t batches_flushed() const { return batches_; }
  /// Held intents dropped because their reducer location never arrived
  /// within the TTL.
  [[nodiscard]] std::uint64_t intents_expired() const { return expired_; }
  /// Held intents reclaimed by job completion.
  [[nodiscard]] std::uint64_t intents_purged_on_completion() const {
    return purged_on_completion_;
  }
  /// Completed fetches whose wire bytes exceeded the remaining predicted
  /// volume for the destination (prediction lost or under-estimated); the
  /// outstanding counter is clamped at zero instead of going negative.
  [[nodiscard]] std::uint64_t underflow_events() const { return underflows_; }
  /// Aggregates currently known (src-server, dst-server pairs ever seen).
  [[nodiscard]] std::size_t aggregate_count() const { return pair_seen_.size(); }
  /// Intents currently parked waiting for a reducer location.
  [[nodiscard]] std::size_t intents_waiting() const;

  /// Cumulative predicted wire volume that `server` will source towards
  /// *other* servers (Fig. 5's predicted curve); points are stamped when the
  /// destination became known — at ingest for running reducers, at
  /// reducer-location resolution otherwise.
  [[nodiscard]] const std::vector<PredictionPoint>& predicted_curve(
      net::NodeId server) const;

  /// Serializes the collector's logical state for snapshots: reducer
  /// locations, held intents, the pending batch, outstanding/predicted
  /// volume maps (sorted by server id), and counters.
  void encode_state(sim::StateEncoder& enc) const;

 private:
  struct ReducerKey {
    std::size_t job_serial;
    std::size_t reduce_index;
    friend auto operator<=>(const ReducerKey&, const ReducerKey&) = default;
  };
  struct HeldIntent {
    ShuffleIntent intent;
    util::SimTime held_at;  // arrival time; TTL counts from here
  };
  void enqueue_update(net::NodeId src, net::NodeId dst, util::Bytes wire);
  void flush_batch();
  /// Lazily drops held intents past the TTL; cheap when nothing can expire.
  void purge_expired();

  sim::Simulation* sim_;
  Allocator* allocator_;
  ControlPlaneWatchdog* watchdog_ = nullptr;
  CollectorConfig cfg_;

  std::map<ReducerKey, net::NodeId> reducer_location_;
  std::map<ReducerKey, std::vector<HeldIntent>> waiting_;
  /// Earliest possible held-intent expiry; SimTime::max() when none held.
  util::SimTime next_expiry_ = util::SimTime::max();

  /// Batched aggregate additions keyed by (src, dst) server pair.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::int64_t> batch_;
  bool flush_pending_ = false;

  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> pair_seen_;
  std::unordered_map<net::NodeId, std::int64_t> dst_outstanding_;
  std::unordered_map<net::NodeId, std::vector<PredictionPoint>> curves_;
  std::unordered_map<net::NodeId, std::int64_t> predicted_totals_;
  std::vector<PredictionPoint> empty_curve_;
  std::uint64_t received_ = 0;
  std::uint64_t held_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t purged_on_completion_ = 0;
  std::uint64_t underflows_ = 0;
  ProtocolOverheadModel retire_model_;
};

}  // namespace pythia::core
