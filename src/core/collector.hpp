// Pythia prediction-notification collector (runs beside the controller).
//
// Responsibilities from the paper:
//  * receive per-(map, reducer) shuffle intents from every slave's
//    instrumentation process;
//  * hold intents whose reducer has not started yet ("unknown destination")
//    and complete them from reducer-initialization events;
//  * aggregate all flows from one mapper server to one reducer server into a
//    single flow entry that sums constituent sizes (dst TCP ports are
//    unknowable in advance, so rules must match at server granularity);
//  * hand batches of aggregate updates to the flow-allocation module.
//
// Three pipelines are selectable (CollectorConfig::pipeline):
//
//  * kWindowed (default, the paper's heuristic): updates accumulate for
//    `batch_window` and flush largest-first (criticality-aware FFD).
//  * kCohortSerial: intents are admitted into per-pod shards (bounded, with
//    synchronous refusal) and drained one-by-one, in canonical
//    (pod, priority, pair, job, flow) order, at every event-cohort boundary.
//    This is the serial reference the batched pipeline is proven against.
//  * kCohortBatched: same shards, same canonical drain order, but contiguous
//    same-pair runs coalesce into a single prediction+allocation submission
//    and the controller applies all fresh installs of the cohort as one
//    rule-table transaction. Byte-identical to kCohortSerial at any shard
//    count (the identity argument lives in docs/architecture.md).
//
// The collector sits at the receiving end of a lossy management network
// (sim::FaultChannel), so it also defends itself: held intents expire after a
// TTL (a reducer-initialization event may have been lost, or the reducer may
// never launch), and a job's residue is purged when the job completes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/intent_shards.hpp"
#include "core/prediction.hpp"
#include "sim/simulation.hpp"

namespace pythia::sim {
class StateEncoder;
}

namespace pythia::core {

class Allocator;
class ControlPlaneWatchdog;

/// Which collector→allocator→controller pipeline runs.
enum class IntentPipeline : std::uint8_t {
  kWindowed = 0,
  kCohortSerial = 1,
  kCohortBatched = 2,
};

struct CollectorConfig {
  /// Aggregation window: intents arriving within it are allocated jointly
  /// (the paper's heuristic "jointly allocates sets of predicted flows").
  /// Windowed pipeline only.
  util::Duration batch_window = util::Duration::millis(100);
  /// Flow criticality (the paper's differentiator over FlowComb): order
  /// batch allocation by how loaded the *destination reducer server* is —
  /// flows feeding the barrier-critical reducer get first pick of paths.
  /// When false, plain first-fit-decreasing by aggregate volume.
  /// Windowed pipeline only (cohort pipelines use the canonical drain
  /// order, which is what makes them shard-invariant).
  bool criticality_aware = true;
  /// Held-intent TTL: an intent whose reducer location never materializes
  /// (lost reducer-init message, reducer never launched) is dropped this
  /// long after arrival. Purging is lazy — no events are scheduled — so a
  /// fault-free run whose reducers start within the TTL is byte-identical
  /// to one without the TTL. Zero disables expiry.
  util::Duration intent_ttl = util::Duration::seconds_i(600);
  /// Pipeline selection (see enum above).
  IntentPipeline pipeline = IntentPipeline::kWindowed;
  /// Cohort pipelines: physical shard count for the per-pod queues.
  /// 0 = one shard per topology locality group. Purely a layout knob — the
  /// drained state is byte-identical for any value (including 1).
  std::size_t shard_count = 0;
  /// Cohort pipelines: max queued intents per pod between cohort
  /// boundaries; a full pod evicts its smallest intent for a strictly
  /// larger newcomer, else refuses the newcomer synchronously. 0 = unbounded.
  std::size_t pod_queue_capacity = 0;
};

/// Bench hook: per-cohort drain notifications. Implementations live outside
/// the deterministic scope (the bench reads wall clocks in them); the
/// collector itself never observes time through this interface and the
/// simulation's behavior is independent of whether an observer is attached.
class CohortDrainObserver {
 public:
  virtual ~CohortDrainObserver() = default;
  /// A cohort drain is starting with `intents` queued intents.
  virtual void on_drain_begin(std::size_t intents) = 0;
  /// One allocator submission covering `intents` intents completed.
  virtual void on_intents_submitted(std::size_t intents) = 0;
  /// Drain finished: `runs` contiguous same-pair runs were processed with
  /// `allocator_calls` total submissions.
  virtual void on_drain_end(std::size_t intents, std::size_t runs,
                            std::size_t allocator_calls) = 0;
};

class Collector {
 public:
  Collector(sim::Simulation& sim, Allocator& allocator,
            CollectorConfig cfg = {});
  ~Collector();
  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Intent from an instrumentation process; dst may be unknown yet.
  void ingest(const ShuffleIntent& intent);

  /// Reducer-initialization event: resolves pending intents for the reducer.
  void reducer_located(std::size_t job_serial, std::size_t reduce_index,
                       net::NodeId server);

  /// A shuffle fetch finished; retires predicted volume so the allocator's
  /// outstanding-load bookkeeping tracks reality.
  void fetch_completed(net::NodeId src_server, net::NodeId dst_server,
                       util::Bytes payload);

  /// Job teardown: reclaims held intents, queued (not yet drained) intents,
  /// and reducer locations for the job so intents for never-launched
  /// reducers cannot leak across jobs.
  void job_completed(std::size_t job_serial);

  /// Health-watchdog hookup: every delivered notification is reported so the
  /// watchdog can track control-plane staleness.
  void set_watchdog(ControlPlaneWatchdog* watchdog) { watchdog_ = watchdog; }

  /// Bench hook (see CohortDrainObserver); nullptr detaches.
  void set_drain_observer(CohortDrainObserver* observer) {
    observer_ = observer;
  }

  /// Outstanding predicted volume destined to a server (criticality proxy:
  /// the most-loaded reducer server gates the shuffle barrier).
  [[nodiscard]] util::Bytes destination_outstanding(net::NodeId dst) const;
  /// Mean outstanding volume across destinations that currently have any.
  [[nodiscard]] util::Bytes mean_destination_outstanding() const;

  // --- accounting ---
  [[nodiscard]] std::uint64_t intents_received() const { return received_; }
  [[nodiscard]] std::uint64_t intents_held_for_reducer() const {
    return held_;
  }
  /// Windowed: flush_batch invocations with work. Cohort: non-empty drains.
  [[nodiscard]] std::uint64_t batches_flushed() const { return batches_; }
  /// Held intents dropped because their reducer location never arrived
  /// within the TTL.
  [[nodiscard]] std::uint64_t intents_expired() const { return expired_; }
  /// Held intents reclaimed by job completion.
  [[nodiscard]] std::uint64_t intents_purged_on_completion() const {
    return purged_on_completion_;
  }
  /// Completed fetches whose wire bytes exceeded the remaining predicted
  /// volume for the destination (prediction lost or under-estimated); the
  /// outstanding counter is clamped at zero instead of going negative.
  [[nodiscard]] std::uint64_t underflow_events() const { return underflows_; }
  /// Aggregates currently known (src-server, dst-server pairs ever seen).
  [[nodiscard]] std::size_t aggregate_count() const { return pair_seen_.size(); }
  /// Intents currently parked waiting for a reducer location.
  [[nodiscard]] std::size_t intents_waiting() const;
  /// Intents admitted to shards, not yet drained (cohort pipelines only).
  [[nodiscard]] std::size_t intents_queued() const;
  /// Admission refusals by the bounded per-pod queues.
  [[nodiscard]] std::uint64_t admission_refused() const;
  /// Queued intents evicted for strictly larger newcomers.
  [[nodiscard]] std::uint64_t admission_evicted() const;
  /// Allocator submissions saved by run coalescing (batched pipeline).
  [[nodiscard]] std::uint64_t coalesced_submissions_saved() const {
    return coalesced_saved_;
  }

  /// Cumulative predicted wire volume that `server` will source towards
  /// *other* servers (Fig. 5's predicted curve); points are stamped when the
  /// destination became known — at ingest for running reducers, at
  /// reducer-location resolution otherwise.
  [[nodiscard]] const std::vector<PredictionPoint>& predicted_curve(
      net::NodeId server) const;

  /// Serializes the collector's *pipeline-invariant* state: the part that is
  /// byte-identical between the serial and batched cohort arms (and at any
  /// shard count). The differential tests and BENCH_controller's
  /// all_identical gate hash this.
  void encode_behavior(sim::StateEncoder& enc) const;

  /// Serializes the collector's full logical state for snapshots:
  /// encode_behavior plus the windowed batch, queued shard content, and
  /// pipeline-specific counters.
  void encode_state(sim::StateEncoder& enc) const;

 private:
  struct ReducerKey {
    std::size_t job_serial;
    std::size_t reduce_index;
    friend auto operator<=>(const ReducerKey&, const ReducerKey&) = default;
  };
  struct HeldIntent {
    ShuffleIntent intent;
    util::SimTime held_at;  // arrival time; TTL counts from here
  };
  /// Windowed batch entry: coalesced bytes plus how many intents they came
  /// from (the intent count is what failure accounting must weight by).
  struct PendingUpdate {
    std::int64_t bytes = 0;
    std::uint64_t intents = 0;
  };
  void enqueue_update(net::NodeId src, net::NodeId dst, util::Bytes wire);
  /// The bookkeeping half of enqueue_update (curves, outstanding, pair set);
  /// shared by all pipelines.
  void book_update(net::NodeId src, net::NodeId dst, std::int64_t wire);
  void flush_batch();
  /// Lazily drops held intents past the TTL; cheap when nothing can expire.
  void purge_expired();

  // --- cohort pipeline ---
  [[nodiscard]] bool cohort_mode() const {
    return cfg_.pipeline != IntentPipeline::kWindowed;
  }
  /// Resolved-destination intent enters admission; `ttl_base` anchors the
  /// expiry horizon (held_at for resolved held intents, now otherwise).
  void admit_intent(const ShuffleIntent& intent, net::NodeId dst,
                    util::SimTime ttl_base);
  /// Cohort-boundary listener body: canonical drain + (batched) coalescing.
  void drain_cohort();
  void submit_one(const AdmittedIntent& a);
  void submit_run(std::uint32_t src, std::uint32_t dst, std::int64_t sum,
                  std::uint64_t intents);

  // pythia-lint: allow(snapshot-skip, group) wiring and config identity:
  // pointers are re-connected by the restore factory and cfg_ is covered by
  // the scenario fingerprint.
  sim::Simulation* sim_;
  Allocator* allocator_;
  ControlPlaneWatchdog* watchdog_ = nullptr;
  CohortDrainObserver* observer_ = nullptr;
  CollectorConfig cfg_;

  std::map<ReducerKey, net::NodeId> reducer_location_;
  std::map<ReducerKey, std::vector<HeldIntent>> waiting_;
  /// Earliest possible held-intent expiry; SimTime::max() when none held.
  util::SimTime next_expiry_ = util::SimTime::max();

  /// Batched aggregate additions keyed by (src, dst) server pair (windowed
  /// pipeline only).
  std::map<std::pair<std::uint32_t, std::uint32_t>, PendingUpdate> batch_;
  bool flush_pending_ = false;

  /// Cohort pipelines: the sharded admission queues + boundary listener.
  std::unique_ptr<ShardedIntentQueue> shards_;
  // pythia-lint: allow(snapshot-skip, group) cohort plumbing quiescent at
  // snapshot cuts: listeners drain at cohort boundaries, and cuts happen at
  // settled instants. shards_ carries its own encode_state section.
  std::size_t cohort_token_ = 0;
  bool cohort_listener_registered_ = false;

  std::map<std::pair<std::uint32_t, std::uint32_t>, bool> pair_seen_;
  std::unordered_map<net::NodeId, std::int64_t> dst_outstanding_;
  std::unordered_map<net::NodeId, std::vector<PredictionPoint>> curves_;
  std::unordered_map<net::NodeId, std::int64_t> predicted_totals_;
  // pythia-lint: allow(snapshot-skip) immutable empty-sentinel returned for
  // unknown reducers; never written after construction.
  std::vector<PredictionPoint> empty_curve_;
  std::uint64_t received_ = 0;
  std::uint64_t held_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t purged_on_completion_ = 0;
  std::uint64_t underflows_ = 0;
  std::uint64_t coalesced_saved_ = 0;
  // pythia-lint: allow(snapshot-skip) pure value object derived from cfg_ at
  // construction (predict_wire_bytes is const); holds no run state.
  ProtocolOverheadModel retire_model_;
};

}  // namespace pythia::core
