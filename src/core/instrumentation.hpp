// Hadoop instrumentation middleware (one logical process per slave server).
//
// Transparent to Hadoop and to applications: it watches the tasktracker for
// map-task completions (modelled as MapOutputNotice events, the equivalent of
// the file-creation notification on the spill directory), decodes the
// intermediate-output index into per-reducer sizes, applies the protocol
// overhead model, and ships one intent message per (map, reducer) pair to
// the collector over the management network.
#pragma once

#include <cstdint>
#include <functional>

#include "core/prediction.hpp"
#include "hadoop/engine.hpp"
#include "sim/fault_channel.hpp"
#include "sim/simulation.hpp"

namespace pythia::core {

class Collector;

struct InstrumentationConfig {
  /// Index-file decode + local processing time at the slave.
  util::Duration decode_delay = util::Duration::millis(120);
  /// One-way latency on the (dedicated, low-load) management network.
  util::Duration management_latency = util::Duration::millis(1);
  /// Extra artificial delay before intents reach the collector — used by the
  /// prediction-lead-time ablation (0 for faithful Pythia).
  util::Duration extra_delay = util::Duration::zero();
  /// Fault model for the management network carrying intents and reducer-
  /// initialization events to the collector. Default-constructed (no drops,
  /// no jitter) the channel is transparent: delivery is synchronous and the
  /// run is byte-identical to one without the channel.
  sim::FaultChannelConfig channel;
  ProtocolOverheadModel overhead;
};

class Instrumentation final : public hadoop::EngineObserver {
 public:
  Instrumentation(sim::Simulation& sim, Collector& collector,
                  InstrumentationConfig cfg = {});

  // EngineObserver:
  void on_map_output_ready(const hadoop::MapOutputNotice& notice) override;
  void on_reducer_started(std::size_t job_serial, std::size_t reduce_index,
                          net::NodeId server, util::SimTime at) override;

  // --- overhead accounting (Section V-C) ---
  [[nodiscard]] std::uint64_t intents_emitted() const { return intents_; }
  [[nodiscard]] util::Bytes control_bytes_sent() const {
    return control_bytes_;
  }
  [[nodiscard]] std::uint64_t decode_events() const { return decodes_; }

  [[nodiscard]] const InstrumentationConfig& config() const { return cfg_; }
  /// The (possibly lossy) management channel this slave's messages traverse.
  [[nodiscard]] const sim::FaultChannel& channel() const { return channel_; }

  /// Serializes instrumentation state for snapshots: emission counters and
  /// the management fault channel's delivery state.
  void encode_state(sim::StateEncoder& enc) const;

 private:
  // pythia-lint: allow(snapshot-skip, group) wiring and config identity,
  // re-connected by the restore factory; channel_ contributes its own
  // FaultChannel::encode_state section.
  sim::Simulation* sim_;
  Collector* collector_;
  InstrumentationConfig cfg_;
  sim::FaultChannel channel_;

  std::uint64_t intents_ = 0;
  std::uint64_t decodes_ = 0;
  util::Bytes control_bytes_;
};

}  // namespace pythia::core
