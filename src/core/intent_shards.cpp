#include "core/intent_shards.hpp"

#include <algorithm>
#include <tuple>

#include "sim/snapshot.hpp"

namespace pythia::core {

bool canonical_intent_less(const AdmittedIntent& a, const AdmittedIntent& b) {
  // Priority descends (higher-priority tenants drain first); everything else
  // ascends. Pair-major within a (pod, priority) band so same-aggregate
  // intents are contiguous across jobs.
  return std::tuple(a.pod, -a.priority, a.src, a.dst, a.job_serial,
                    a.reduce_index, a.map_index, a.admit_seq) <
         std::tuple(b.pod, -b.priority, b.src, b.dst, b.job_serial,
                    b.reduce_index, b.map_index, b.admit_seq);
}

ShardedIntentQueue::ShardedIntentQueue(Config cfg) : cfg_(cfg) {
  if (cfg_.shard_count == 0) cfg_.shard_count = 1;
  shards_.resize(cfg_.shard_count);
}

std::size_t ShardedIntentQueue::shard_for(std::int32_t pod) const {
  // Pods can be negative (kCoreGroup placements); fold into [0, shards).
  const auto n = static_cast<std::int64_t>(shards_.size());
  const std::int64_t m = static_cast<std::int64_t>(pod) % n;
  return static_cast<std::size_t>(m < 0 ? m + n : m);
}

ShardedIntentQueue::Admission ShardedIntentQueue::admit(AdmittedIntent intent) {
  auto& pod_queue = shards_[shard_for(intent.pod)].pods[intent.pod];
  intent.admit_seq = next_admit_seq_++;

  if (cfg_.pod_capacity > 0 && pod_queue.size() >= cfg_.pod_capacity) {
    // Flow-table semantics: evict the pod's smallest-volume intent if the
    // newcomer is strictly larger, otherwise refuse the newcomer. Victim
    // choice is a total order (volume, then newest first), so the bound's
    // behavior never depends on shard layout.
    auto victim = pod_queue.begin();
    for (auto it = pod_queue.begin(); it != pod_queue.end(); ++it) {
      if (it->wire_bytes < victim->wire_bytes ||
          (it->wire_bytes == victim->wire_bytes &&
           it->admit_seq > victim->admit_seq)) {
        victim = it;
      }
    }
    if (victim->wire_bytes >= intent.wire_bytes) {
      ++refused_;
      return Admission::kRefused;
    }
    pod_queue.erase(victim);
    --size_;
    ++evicted_;
    pod_queue.push_back(intent);
    ++size_;
    ++admitted_;
    return Admission::kAdmittedWithEviction;
  }

  pod_queue.push_back(intent);
  ++size_;
  ++admitted_;
  return Admission::kAdmitted;
}

std::vector<AdmittedIntent> ShardedIntentQueue::drain() {
  std::vector<AdmittedIntent> all;
  all.reserve(size_);
  for (Shard& shard : shards_) {
    for (auto& [pod, queue] : shard.pods) {
      all.insert(all.end(), queue.begin(), queue.end());
    }
    shard.pods.clear();
  }
  size_ = 0;
  std::sort(all.begin(), all.end(), canonical_intent_less);
  return all;
}

std::size_t ShardedIntentQueue::purge_job(std::uint64_t job_serial) {
  std::size_t purged = 0;
  for (Shard& shard : shards_) {
    for (auto it = shard.pods.begin(); it != shard.pods.end();) {
      auto& queue = it->second;
      const std::size_t before = queue.size();
      std::erase_if(queue, [job_serial](const AdmittedIntent& a) {
        return a.job_serial == job_serial;
      });
      purged += before - queue.size();
      it = queue.empty() ? shard.pods.erase(it) : ++it;
    }
  }
  size_ -= purged;
  return purged;
}

void ShardedIntentQueue::encode_state(sim::StateEncoder& enc) const {
  // Merge per-pod queues across shards into pod-ascending order so the image
  // is identical at any shard count. Each pod lives in exactly one shard, so
  // this is a disjoint gather, not a merge of duplicates.
  std::vector<const std::vector<AdmittedIntent>*> pods_sorted;
  std::vector<std::int32_t> pod_ids;
  for (const Shard& shard : shards_) {
    for (const auto& [pod, queue] : shard.pods) {
      pod_ids.push_back(pod);
      pods_sorted.push_back(&queue);
    }
  }
  std::vector<std::size_t> order(pod_ids.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return pod_ids[a] < pod_ids[b];
  });

  enc.put_u32(static_cast<std::uint32_t>(order.size()));
  for (std::size_t idx : order) {
    enc.put_i64(pod_ids[idx]);
    const auto& queue = *pods_sorted[idx];
    enc.put_u32(static_cast<std::uint32_t>(queue.size()));
    for (const AdmittedIntent& a : queue) {
      enc.put_i64(a.priority);
      enc.put_u64(a.job_serial);
      enc.put_u32(a.src);
      enc.put_u32(a.dst);
      enc.put_u64(a.reduce_index);
      enc.put_u64(a.map_index);
      enc.put_i64(a.wire_bytes);
      enc.put_time(a.admitted_at);
      enc.put_time(a.expires_at);
      enc.put_u64(a.admit_seq);
    }
  }
  enc.put_u64(next_admit_seq_);
  enc.put_u64(admitted_);
  enc.put_u64(refused_);
  enc.put_u64(evicted_);
}

}  // namespace pythia::core
