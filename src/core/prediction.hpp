// Shuffle-intent prediction messages and the wire-volume overhead model.
//
// The instrumentation middleware works at the application layer: it decodes
// the spilled map-output index and therefore knows payload bytes, not
// on-the-wire bytes. To predict wire volume it adds protocol framing
// estimated from known header sizes. The paper observes this makes Pythia
// over-estimate by 3–7% and argues over-estimation is the safe direction
// (the prediction never lags the actual traffic).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/types.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pythia::core {

/// Conservative per-payload-byte protocol framing estimate.
struct ProtocolOverheadModel {
  /// Ethernet + IP + TCP header bytes per segment, assuming no options are
  /// known in advance, so the worst reasonable case is used.
  double header_bytes_per_segment = 78.0;  // 18 eth + 20 ip + 40 tcp w/opts
  /// Assumed MSS; the instrumentation cannot see PMTU, so it uses a
  /// conservative (small) segment estimate, inflating the prediction.
  double assumed_mss = 1380.0;
  /// HTTP response framing per map-output fetch.
  double http_framing_bytes = 320.0;

  /// Multiplicative factor applied to payload bytes (> 1).
  [[nodiscard]] double factor() const {
    return 1.0 + header_bytes_per_segment / assumed_mss;
  }
  /// Predicted wire bytes for one map-output partition.
  [[nodiscard]] util::Bytes predict_wire_bytes(util::Bytes payload) const {
    return util::Bytes{static_cast<std::int64_t>(
        payload.as_double() * factor() + http_framing_bytes + 0.5)};
  }
};

/// One per-(map task, reducer) shuffle intent, as serialized by the
/// instrumentation process to the collector. At emission time the reducer's
/// network location may still be unknown (reducers start after slow-start);
/// the collector fills it in from reducer-initialization events.
struct ShuffleIntent {
  std::size_t job_serial = 0;
  std::size_t map_index = 0;
  std::size_t reduce_index = 0;
  net::NodeId src_server;
  util::Bytes predicted_wire_bytes;
  util::SimTime emitted_at;
  /// Multi-tenant annotations (open-arrival workloads): the owning tenant
  /// and its scheduling priority. Higher priority drains earlier within a
  /// cohort in the sharded pipeline; 0/0 (single-tenant engine paths) keeps
  /// the canonical drain order purely topological.
  std::uint32_t tenant = 0;
  std::int32_t priority = 0;
};

/// Cumulative predicted-traffic curve entry (per source server), directly
/// comparable with the NetFlow measured curve of Fig. 5. Points are stamped
/// when the (source, destination, size) triple became known to the
/// collector — i.e. at prediction time, well before the wire sees the bytes.
struct PredictionPoint {
  util::SimTime at;
  util::Bytes cumulative;
};

/// Serialized message size estimate for control-overhead accounting
/// (map-task id + per-reducer entries).
[[nodiscard]] inline util::Bytes intent_message_bytes(
    std::size_t reducer_entries) {
  return util::Bytes{static_cast<std::int64_t>(48 + 16 * reducer_entries)};
}

}  // namespace pythia::core
