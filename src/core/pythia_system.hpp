// Pythia, assembled: instrumentation middleware + collector + allocator,
// attached to a MapReduce engine and an SDN controller. This is the main
// user-facing entry point for turning Pythia on over a simulated cluster.
#pragma once

#include <memory>

#include "core/allocator.hpp"
#include "core/collector.hpp"
#include "core/instrumentation.hpp"
#include "core/watchdog.hpp"
#include "hadoop/engine.hpp"
#include "sdn/controller.hpp"

namespace pythia::core {

struct PythiaConfig {
  InstrumentationConfig instrumentation;
  CollectorConfig collector;
  AllocatorConfig allocator;
  /// Orchestra-style proportional bandwidth: weight each shuffle flow by its
  /// destination server's outstanding predicted volume, so a reducer
  /// receiving 5x the data gets ~5x the network capacity (the paper's
  /// Section II intuition, actuated through weighted max-min sharing).
  bool weighted_flows = false;
  /// Weight clamp range when weighted_flows is on.
  double min_flow_weight = 0.25;
  double max_flow_weight = 8.0;
  /// Control-plane health watchdog (falls back to ECMP when the management
  /// channel or rule installs degrade). The system widens the staleness
  /// threshold by the configured instrumentation pipeline latency so
  /// deliberately delayed arms never trip it.
  WatchdogConfig watchdog;
};

class PythiaSystem final : public hadoop::EngineObserver {
 public:
  /// Attaches Pythia to `engine` (registers itself as an observer) and
  /// drives `controller` for rule installation.
  PythiaSystem(sim::Simulation& sim, hadoop::MapReduceEngine& engine,
               sdn::Controller& controller, PythiaConfig cfg = {});

  PythiaSystem(const PythiaSystem&) = delete;
  PythiaSystem& operator=(const PythiaSystem&) = delete;

  [[nodiscard]] Instrumentation& instrumentation() { return *instrumentation_; }
  [[nodiscard]] Collector& collector() { return *collector_; }
  [[nodiscard]] Allocator& allocator() { return *allocator_; }
  [[nodiscard]] ControlPlaneWatchdog& watchdog() { return *watchdog_; }
  [[nodiscard]] const Instrumentation& instrumentation() const {
    return *instrumentation_;
  }
  [[nodiscard]] const Collector& collector() const { return *collector_; }
  [[nodiscard]] const Allocator& allocator() const { return *allocator_; }
  [[nodiscard]] const ControlPlaneWatchdog& watchdog() const {
    return *watchdog_;
  }

  // EngineObserver (delegating to the middleware components):
  void on_map_output_ready(const hadoop::MapOutputNotice& notice) override;
  void on_reducer_started(std::size_t job_serial, std::size_t reduce_index,
                          net::NodeId server, util::SimTime at) override;
  void on_fetch_started(std::size_t job_serial,
                        const hadoop::FetchRecord& fetch,
                        net::FlowId flow) override;
  void on_fetch_completed(std::size_t job_serial,
                          const hadoop::FetchRecord& fetch) override;
  void on_job_completed(std::size_t job_serial,
                        const hadoop::JobResult& result) override;

  /// Serializes the entire Pythia stack for snapshots: instrumentation,
  /// collector, allocator, and watchdog state, in that fixed order.
  void encode_state(sim::StateEncoder& enc) const;

 private:
  // pythia-lint: allow(snapshot-skip, group) wiring and config identity:
  // the controller pointer is re-connected and cfg_ re-supplied by the
  // fingerprinted scenario on restore; the owned subsystems below each
  // contribute their own encode_state sections.
  sdn::Controller* controller_;
  PythiaConfig cfg_;
  std::unique_ptr<Allocator> allocator_;
  std::unique_ptr<Collector> collector_;
  std::unique_ptr<Instrumentation> instrumentation_;
  std::unique_ptr<ControlPlaneWatchdog> watchdog_;
};

}  // namespace pythia::core
