#include "core/collector.hpp"

#include <algorithm>

#include "core/allocator.hpp"
#include "core/watchdog.hpp"
#include "net/topology.hpp"
#include "sim/snapshot.hpp"
#include "util/log.hpp"

namespace pythia::core {

Collector::Collector(sim::Simulation& sim, Allocator& allocator,
                     CollectorConfig cfg)
    : sim_(&sim), allocator_(&allocator), cfg_(cfg) {
  if (!cohort_mode()) return;
  std::size_t shard_count = cfg_.shard_count;
  if (shard_count == 0) {
    // One shard per host locality group (fat-tree pod / rack), the layout
    // that maps shards onto the collector replicas a real deployment would
    // run next to each pod.
    const net::Topology& topo = allocator_->controller().topology();
    std::vector<std::int32_t> groups;
    for (net::NodeId h : topo.hosts()) groups.push_back(topo.node_group(h));
    std::sort(groups.begin(), groups.end());
    groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
    shard_count = std::max<std::size_t>(1, groups.size());
  }
  shards_ = std::make_unique<ShardedIntentQueue>(ShardedIntentQueue::Config{
      .shard_count = shard_count, .pod_capacity = cfg_.pod_queue_capacity});
  cohort_token_ = sim_->queue().add_cohort_listener([this] { drain_cohort(); });
  cohort_listener_registered_ = true;
}

Collector::~Collector() {
  if (cohort_listener_registered_) {
    sim_->queue().remove_cohort_listener(cohort_token_);
  }
}

void Collector::purge_expired() {
  if (cfg_.intent_ttl <= util::Duration::zero()) return;
  const util::SimTime now = sim_->now();
  if (now < next_expiry_) return;

  next_expiry_ = util::SimTime::max();
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    auto& held = it->second;
    std::erase_if(held, [&](const HeldIntent& h) {
      if (now - h.held_at >= cfg_.intent_ttl) {
        ++expired_;
        return true;
      }
      next_expiry_ = std::min(next_expiry_, h.held_at + cfg_.intent_ttl);
      return false;
    });
    it = held.empty() ? waiting_.erase(it) : ++it;
  }
}

void Collector::ingest(const ShuffleIntent& intent) {
  ++received_;
  if (watchdog_ != nullptr) watchdog_->note_notification(sim_->now());
  purge_expired();
  const ReducerKey key{intent.job_serial, intent.reduce_index};
  const auto located = reducer_location_.find(key);
  if (located == reducer_location_.end()) {
    // Destination unknown until the reducer initializes (paper §III).
    waiting_[key].push_back(HeldIntent{intent, sim_->now()});
    ++held_;
    if (cfg_.intent_ttl > util::Duration::zero()) {
      next_expiry_ = std::min(next_expiry_, sim_->now() + cfg_.intent_ttl);
    }
    return;
  }
  if (cohort_mode()) {
    admit_intent(intent, located->second, sim_->now());
  } else {
    enqueue_update(intent.src_server, located->second,
                   intent.predicted_wire_bytes);
  }
}

void Collector::reducer_located(std::size_t job_serial,
                                std::size_t reduce_index,
                                net::NodeId server) {
  if (watchdog_ != nullptr) watchdog_->note_notification(sim_->now());
  purge_expired();
  const ReducerKey key{job_serial, reduce_index};
  reducer_location_[key] = server;
  const auto it = waiting_.find(key);
  if (it == waiting_.end()) return;
  for (const auto& held : it->second) {
    if (cohort_mode()) {
      // The TTL horizon anchors at *arrival*: a resolved intent inherits
      // held_at + ttl as its expiry so a late reducer location cannot revive
      // an intent past its TTL (purge_expired above already dropped the
      // fully expired ones; the admitted horizon covers the drain edge).
      admit_intent(held.intent, server, held.held_at);
    } else {
      enqueue_update(held.intent.src_server, server,
                     held.intent.predicted_wire_bytes);
    }
  }
  waiting_.erase(it);
}

void Collector::job_completed(std::size_t job_serial) {
  const ReducerKey lo{job_serial, 0};
  const ReducerKey hi{job_serial + 1, 0};
  for (auto it = waiting_.lower_bound(lo);
       it != waiting_.end() && it->first.job_serial == job_serial;) {
    purged_on_completion_ += it->second.size();
    it = waiting_.erase(it);
  }
  reducer_location_.erase(reducer_location_.lower_bound(lo),
                          reducer_location_.lower_bound(hi));
  if (shards_ != nullptr) {
    // Queued-but-undrained intents die with the job: the transfers they
    // predicted will never start, so installing rules for them would only
    // occupy flow-table space.
    purged_on_completion_ += shards_->purge_job(job_serial);
  }
}

std::size_t Collector::intents_waiting() const {
  std::size_t total = 0;
  for (const auto& [_, held] : waiting_) total += held.size();
  return total;
}

std::size_t Collector::intents_queued() const {
  return shards_ == nullptr ? 0 : shards_->size();
}

std::uint64_t Collector::admission_refused() const {
  return shards_ == nullptr ? 0 : shards_->refused();
}

std::uint64_t Collector::admission_evicted() const {
  return shards_ == nullptr ? 0 : shards_->evicted();
}

const std::vector<PredictionPoint>& Collector::predicted_curve(
    net::NodeId server) const {
  const auto it = curves_.find(server);
  return it == curves_.end() ? empty_curve_ : it->second;
}

void Collector::book_update(net::NodeId src, net::NodeId dst,
                            std::int64_t wire) {
  auto& total = predicted_totals_[src];
  total += wire;
  auto& curve = curves_[src];
  if (!curve.empty() && curve.back().at == sim_->now()) {
    curve.back().cumulative = util::Bytes{total};
  } else {
    curve.push_back(PredictionPoint{sim_->now(), util::Bytes{total}});
  }
  pair_seen_[std::pair{src.value(), dst.value()}] = true;
  dst_outstanding_[dst] += wire;
}

void Collector::enqueue_update(net::NodeId src, net::NodeId dst,
                               util::Bytes wire) {
  if (src == dst) return;  // server-local copy, never touches the network
  book_update(src, dst, wire.count());
  auto& pending = batch_[std::pair{src.value(), dst.value()}];
  pending.bytes += wire.count();
  pending.intents += 1;
  if (!flush_pending_) {
    flush_pending_ = true;
    sim_->after(cfg_.batch_window, [this] { flush_batch(); });
  }
}

void Collector::flush_batch() {
  flush_pending_ = false;
  if (batch_.empty()) return;
  ++batches_;

  // First-fit decreasing. With criticality on, the primary sort key is the
  // destination server's total outstanding predicted volume: aggregates
  // feeding the barrier-critical reducer are packed first and get the best
  // paths (the criterion the paper adds over FlowComb's volumes-only view).
  std::vector<
      std::pair<std::pair<std::uint32_t, std::uint32_t>, PendingUpdate>>
      updates(batch_.begin(), batch_.end());
  batch_.clear();
  std::sort(updates.begin(), updates.end(), [this](const auto& a,
                                                   const auto& b) {
    if (cfg_.criticality_aware) {
      const auto crit = [this](const auto& u) {
        const auto it = dst_outstanding_.find(net::NodeId{u.first.second});
        return it == dst_outstanding_.end() ? std::int64_t{0} : it->second;
      };
      const std::int64_t ca = crit(a);
      const std::int64_t cb = crit(b);
      if (ca != cb) return ca > cb;
    }
    if (a.second.bytes != b.second.bytes) return a.second.bytes > b.second.bytes;
    return a.first < b.first;
  });
  for (const auto& [pair, pending] : updates) {
    allocator_->add_predicted_volume(net::NodeId{pair.first},
                                     net::NodeId{pair.second},
                                     util::Bytes{pending.bytes},
                                     pending.intents);
  }
}

void Collector::admit_intent(const ShuffleIntent& intent, net::NodeId dst,
                             util::SimTime ttl_base) {
  if (intent.src_server == dst) return;  // server-local copy
  const net::Topology& topo = allocator_->controller().topology();
  AdmittedIntent a;
  a.pod = topo.node_group(intent.src_server);
  a.priority = intent.priority;
  a.job_serial = intent.job_serial;
  a.src = intent.src_server.value();
  a.dst = dst.value();
  a.reduce_index = intent.reduce_index;
  a.map_index = intent.map_index;
  a.wire_bytes = intent.predicted_wire_bytes.count();
  a.admitted_at = sim_->now();
  a.expires_at = cfg_.intent_ttl > util::Duration::zero()
                     ? ttl_base + cfg_.intent_ttl
                     : util::SimTime::max();
  if (shards_->admit(a) != ShardedIntentQueue::Admission::kRefused) {
    // Something is queued; make sure the cohort boundary fires even if no
    // simulator event defers work this cohort.
    sim_->queue().mark_cohort_activity();
  }
}

void Collector::submit_one(const AdmittedIntent& a) {
  book_update(net::NodeId{a.src}, net::NodeId{a.dst}, a.wire_bytes);
  allocator_->add_predicted_volume(net::NodeId{a.src}, net::NodeId{a.dst},
                                   util::Bytes{a.wire_bytes}, 1);
  if (observer_ != nullptr) observer_->on_intents_submitted(1);
}

void Collector::submit_run(std::uint32_t src, std::uint32_t dst,
                           std::int64_t sum, std::uint64_t intents) {
  book_update(net::NodeId{src}, net::NodeId{dst}, sum);
  allocator_->add_predicted_volume(net::NodeId{src}, net::NodeId{dst},
                                   util::Bytes{sum}, intents);
  if (observer_ != nullptr) {
    observer_->on_intents_submitted(static_cast<std::size_t>(intents));
  }
}

void Collector::drain_cohort() {
  if (shards_ == nullptr || shards_->empty()) return;
  std::vector<AdmittedIntent> batch = shards_->drain();
  const util::SimTime now = sim_->now();
  // TTL guard at the install edge: an admitted intent whose horizon passed
  // must not install. purge_expired() catches expiry before admission; this
  // keeps the invariant airtight however the intent reached the queue.
  std::erase_if(batch, [&](const AdmittedIntent& a) {
    if (now >= a.expires_at) {
      ++expired_;
      return true;
    }
    return false;
  });
  if (batch.empty()) return;

  if (observer_ != nullptr) observer_->on_drain_begin(batch.size());
  ++batches_;
  const bool batched = cfg_.pipeline == IntentPipeline::kCohortBatched;
  if (batched) allocator_->controller().begin_install_batch();

  std::size_t runs = 0;
  std::size_t calls = 0;
  std::size_t i = 0;
  while (i < batch.size()) {
    // Maximal contiguous same-(src, dst) run; the canonical order makes
    // every intent of one aggregate in this cohort contiguous.
    std::size_t j = i;
    while (j < batch.size() && batch[j].src == batch[i].src &&
           batch[j].dst == batch[i].dst) {
      ++j;
    }
    ++runs;
    if (!batched) {
      for (std::size_t k = i; k < j; ++k) {
        submit_one(batch[k]);
        ++calls;
      }
    } else {
      // Per-intent until the pair is a pure volume add (installed with
      // outstanding volume, or allocator suspended) — the serial arm's
      // submissions from that point on cannot change allocation decisions,
      // so the tail of the run coalesces into one summed submission.
      // Refused pairs never become coalescable and stay per-intent, which
      // keeps refusal counts equal to the serial arm's.
      std::size_t k = i;
      while (k < j && !allocator_->pair_coalescable(net::NodeId{batch[k].src},
                                                    net::NodeId{batch[k].dst})) {
        submit_one(batch[k]);
        ++calls;
        ++k;
      }
      if (k < j) {
        std::int64_t sum = 0;
        for (std::size_t m = k; m < j; ++m) sum += batch[m].wire_bytes;
        submit_run(batch[i].src, batch[i].dst, sum,
                   static_cast<std::uint64_t>(j - k));
        ++calls;
        coalesced_saved_ += (j - k) - 1;
      }
    }
    i = j;
  }

  if (batched) allocator_->controller().commit_install_batch();
  if (observer_ != nullptr) observer_->on_drain_end(batch.size(), runs, calls);
}

void Collector::fetch_completed(net::NodeId src_server, net::NodeId dst_server,
                                util::Bytes payload) {
  if (src_server == dst_server) return;
  // Retire the wire-volume estimate this fetch contributed when predicted.
  const util::Bytes wire = retire_model_.predict_wire_bytes(payload);
  allocator_->retire_volume(src_server, dst_server, wire);
  auto& dst_total = dst_outstanding_[dst_server];
  // Actual wire bytes can exceed what was predicted (the prediction may have
  // been lost in transit, or under-estimated under skew); clamp at zero so
  // the criticality proxy never goes negative, and count the desync.
  if (dst_total < wire.count()) ++underflows_;
  dst_total = std::max<std::int64_t>(0, dst_total - wire.count());
}

util::Bytes Collector::destination_outstanding(net::NodeId dst) const {
  const auto it = dst_outstanding_.find(dst);
  return it == dst_outstanding_.end() ? util::Bytes::zero()
                                      : util::Bytes{it->second};
}

util::Bytes Collector::mean_destination_outstanding() const {
  std::int64_t total = 0;
  std::int64_t live = 0;
  // pythia-lint: allow(unordered-iter) commutative integer sum/count over
  // all entries; order-insensitive by construction
  for (const auto& [_, bytes] : dst_outstanding_) {
    if (bytes <= 0) continue;
    total += bytes;
    ++live;
  }
  return live == 0 ? util::Bytes::zero() : util::Bytes{total / live};
}

void Collector::encode_behavior(sim::StateEncoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(reducer_location_.size()));
  for (const auto& [key, server] : reducer_location_) {
    enc.put_u64(key.job_serial);
    enc.put_u64(key.reduce_index);
    enc.put_u32(server.value());
  }

  enc.put_u32(static_cast<std::uint32_t>(waiting_.size()));
  for (const auto& [key, held] : waiting_) {
    enc.put_u64(key.job_serial);
    enc.put_u64(key.reduce_index);
    enc.put_u32(static_cast<std::uint32_t>(held.size()));
    for (const HeldIntent& h : held) {
      enc.put_u64(h.intent.job_serial);
      enc.put_u64(h.intent.map_index);
      enc.put_u64(h.intent.reduce_index);
      enc.put_u32(h.intent.src_server.value());
      enc.put_i64(h.intent.predicted_wire_bytes.count());
      enc.put_time(h.intent.emitted_at);
      enc.put_u32(h.intent.tenant);
      enc.put_i64(h.intent.priority);
      enc.put_time(h.held_at);
    }
  }
  enc.put_time(next_expiry_);

  enc.put_u32(static_cast<std::uint32_t>(pair_seen_.size()));
  for (const auto& [pair, seen] : pair_seen_) {
    enc.put_u32(pair.first);
    enc.put_u32(pair.second);
    enc.put_bool(seen);
  }

  auto encode_node_map = [&enc](const auto& map, auto&& encode_value) {
    std::vector<std::uint32_t> nodes;
    nodes.reserve(map.size());
    // Key collection only (the generic param hides the unordered type from
    // pythia-lint); order is fixed by the sort below.
    for (const auto& [node, value] : map) nodes.push_back(node.value());
    std::sort(nodes.begin(), nodes.end());
    enc.put_u32(static_cast<std::uint32_t>(nodes.size()));
    for (std::uint32_t n : nodes) {
      enc.put_u32(n);
      encode_value(map.at(net::NodeId{n}));
    }
  };
  encode_node_map(dst_outstanding_,
                  [&enc](std::int64_t v) { enc.put_i64(v); });
  encode_node_map(curves_, [&enc](const std::vector<PredictionPoint>& curve) {
    enc.put_u32(static_cast<std::uint32_t>(curve.size()));
    for (const PredictionPoint& p : curve) {
      enc.put_time(p.at);
      enc.put_i64(p.cumulative.count());
    }
  });
  encode_node_map(predicted_totals_,
                  [&enc](std::int64_t v) { enc.put_i64(v); });

  enc.put_u64(received_);
  enc.put_u64(held_);
  enc.put_u64(batches_);
  enc.put_u64(expired_);
  enc.put_u64(purged_on_completion_);
  enc.put_u64(underflows_);
  // Admission outcomes are pipeline-invariant: the per-pod bound decides
  // each intent identically at any shard count and in both cohort arms.
  enc.put_u64(shards_ == nullptr ? 0 : shards_->admitted());
  enc.put_u64(admission_refused());
  enc.put_u64(admission_evicted());
}

void Collector::encode_state(sim::StateEncoder& enc) const {
  encode_behavior(enc);

  enc.put_u8(static_cast<std::uint8_t>(cfg_.pipeline));
  enc.put_u32(static_cast<std::uint32_t>(batch_.size()));
  for (const auto& [pair, pending] : batch_) {
    enc.put_u32(pair.first);
    enc.put_u32(pair.second);
    enc.put_i64(pending.bytes);
    enc.put_u64(pending.intents);
  }
  enc.put_bool(flush_pending_);

  enc.put_bool(shards_ != nullptr);
  if (shards_ != nullptr) shards_->encode_state(enc);
  enc.put_u64(coalesced_saved_);
}

}  // namespace pythia::core
