#include "core/collector.hpp"

#include <algorithm>

#include "core/allocator.hpp"
#include "core/watchdog.hpp"
#include "sim/snapshot.hpp"
#include "util/log.hpp"

namespace pythia::core {

Collector::Collector(sim::Simulation& sim, Allocator& allocator,
                     CollectorConfig cfg)
    : sim_(&sim), allocator_(&allocator), cfg_(cfg) {}

void Collector::purge_expired() {
  if (cfg_.intent_ttl <= util::Duration::zero()) return;
  const util::SimTime now = sim_->now();
  if (now < next_expiry_) return;

  next_expiry_ = util::SimTime::max();
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    auto& held = it->second;
    std::erase_if(held, [&](const HeldIntent& h) {
      if (now - h.held_at >= cfg_.intent_ttl) {
        ++expired_;
        return true;
      }
      next_expiry_ = std::min(next_expiry_, h.held_at + cfg_.intent_ttl);
      return false;
    });
    it = held.empty() ? waiting_.erase(it) : ++it;
  }
}

void Collector::ingest(const ShuffleIntent& intent) {
  ++received_;
  if (watchdog_ != nullptr) watchdog_->note_notification(sim_->now());
  purge_expired();
  const ReducerKey key{intent.job_serial, intent.reduce_index};
  const auto located = reducer_location_.find(key);
  if (located == reducer_location_.end()) {
    // Destination unknown until the reducer initializes (paper §III).
    waiting_[key].push_back(HeldIntent{intent, sim_->now()});
    ++held_;
    if (cfg_.intent_ttl > util::Duration::zero()) {
      next_expiry_ = std::min(next_expiry_, sim_->now() + cfg_.intent_ttl);
    }
    return;
  }
  enqueue_update(intent.src_server, located->second,
                 intent.predicted_wire_bytes);
}

void Collector::reducer_located(std::size_t job_serial,
                                std::size_t reduce_index,
                                net::NodeId server) {
  if (watchdog_ != nullptr) watchdog_->note_notification(sim_->now());
  purge_expired();
  const ReducerKey key{job_serial, reduce_index};
  reducer_location_[key] = server;
  const auto it = waiting_.find(key);
  if (it == waiting_.end()) return;
  for (const auto& held : it->second) {
    enqueue_update(held.intent.src_server, server,
                   held.intent.predicted_wire_bytes);
  }
  waiting_.erase(it);
}

void Collector::job_completed(std::size_t job_serial) {
  const ReducerKey lo{job_serial, 0};
  const ReducerKey hi{job_serial + 1, 0};
  for (auto it = waiting_.lower_bound(lo);
       it != waiting_.end() && it->first.job_serial == job_serial;) {
    purged_on_completion_ += it->second.size();
    it = waiting_.erase(it);
  }
  reducer_location_.erase(reducer_location_.lower_bound(lo),
                          reducer_location_.lower_bound(hi));
}

std::size_t Collector::intents_waiting() const {
  std::size_t total = 0;
  for (const auto& [_, held] : waiting_) total += held.size();
  return total;
}

const std::vector<PredictionPoint>& Collector::predicted_curve(
    net::NodeId server) const {
  const auto it = curves_.find(server);
  return it == curves_.end() ? empty_curve_ : it->second;
}

void Collector::enqueue_update(net::NodeId src, net::NodeId dst,
                               util::Bytes wire) {
  if (src == dst) return;  // server-local copy, never touches the network
  auto& total = predicted_totals_[src];
  total += wire.count();
  auto& curve = curves_[src];
  if (!curve.empty() && curve.back().at == sim_->now()) {
    curve.back().cumulative = util::Bytes{total};
  } else {
    curve.push_back(PredictionPoint{sim_->now(), util::Bytes{total}});
  }
  const auto key = std::pair{src.value(), dst.value()};
  pair_seen_[key] = true;
  batch_[key] += wire.count();
  dst_outstanding_[dst] += wire.count();
  if (!flush_pending_) {
    flush_pending_ = true;
    sim_->after(cfg_.batch_window, [this] { flush_batch(); });
  }
}

void Collector::flush_batch() {
  flush_pending_ = false;
  if (batch_.empty()) return;
  ++batches_;

  // First-fit decreasing. With criticality on, the primary sort key is the
  // destination server's total outstanding predicted volume: aggregates
  // feeding the barrier-critical reducer are packed first and get the best
  // paths (the criterion the paper adds over FlowComb's volumes-only view).
  std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>, std::int64_t>>
      updates(batch_.begin(), batch_.end());
  batch_.clear();
  std::sort(updates.begin(), updates.end(), [this](const auto& a,
                                                   const auto& b) {
    if (cfg_.criticality_aware) {
      const auto crit = [this](const auto& u) {
        const auto it = dst_outstanding_.find(net::NodeId{u.first.second});
        return it == dst_outstanding_.end() ? std::int64_t{0} : it->second;
      };
      const std::int64_t ca = crit(a);
      const std::int64_t cb = crit(b);
      if (ca != cb) return ca > cb;
    }
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (const auto& [pair, bytes] : updates) {
    allocator_->add_predicted_volume(net::NodeId{pair.first},
                                     net::NodeId{pair.second},
                                     util::Bytes{bytes});
  }
}

void Collector::fetch_completed(net::NodeId src_server, net::NodeId dst_server,
                                util::Bytes payload) {
  if (src_server == dst_server) return;
  // Retire the wire-volume estimate this fetch contributed when predicted.
  const util::Bytes wire = retire_model_.predict_wire_bytes(payload);
  allocator_->retire_volume(src_server, dst_server, wire);
  auto& dst_total = dst_outstanding_[dst_server];
  // Actual wire bytes can exceed what was predicted (the prediction may have
  // been lost in transit, or under-estimated under skew); clamp at zero so
  // the criticality proxy never goes negative, and count the desync.
  if (dst_total < wire.count()) ++underflows_;
  dst_total = std::max<std::int64_t>(0, dst_total - wire.count());
}

util::Bytes Collector::destination_outstanding(net::NodeId dst) const {
  const auto it = dst_outstanding_.find(dst);
  return it == dst_outstanding_.end() ? util::Bytes::zero()
                                      : util::Bytes{it->second};
}

util::Bytes Collector::mean_destination_outstanding() const {
  std::int64_t total = 0;
  std::int64_t live = 0;
  // pythia-lint: allow(unordered-iter) commutative integer sum/count over
  // all entries; order-insensitive by construction
  for (const auto& [_, bytes] : dst_outstanding_) {
    if (bytes <= 0) continue;
    total += bytes;
    ++live;
  }
  return live == 0 ? util::Bytes::zero() : util::Bytes{total / live};
}

void Collector::encode_state(sim::StateEncoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(reducer_location_.size()));
  for (const auto& [key, server] : reducer_location_) {
    enc.put_u64(key.job_serial);
    enc.put_u64(key.reduce_index);
    enc.put_u32(server.value());
  }

  enc.put_u32(static_cast<std::uint32_t>(waiting_.size()));
  for (const auto& [key, held] : waiting_) {
    enc.put_u64(key.job_serial);
    enc.put_u64(key.reduce_index);
    enc.put_u32(static_cast<std::uint32_t>(held.size()));
    for (const HeldIntent& h : held) {
      enc.put_u64(h.intent.job_serial);
      enc.put_u64(h.intent.map_index);
      enc.put_u64(h.intent.reduce_index);
      enc.put_u32(h.intent.src_server.value());
      enc.put_i64(h.intent.predicted_wire_bytes.count());
      enc.put_time(h.intent.emitted_at);
      enc.put_time(h.held_at);
    }
  }
  enc.put_time(next_expiry_);

  enc.put_u32(static_cast<std::uint32_t>(batch_.size()));
  for (const auto& [pair, bytes] : batch_) {
    enc.put_u32(pair.first);
    enc.put_u32(pair.second);
    enc.put_i64(bytes);
  }
  enc.put_bool(flush_pending_);

  enc.put_u32(static_cast<std::uint32_t>(pair_seen_.size()));
  for (const auto& [pair, seen] : pair_seen_) {
    enc.put_u32(pair.first);
    enc.put_u32(pair.second);
    enc.put_bool(seen);
  }

  auto encode_node_map = [&enc](const auto& map, auto&& encode_value) {
    std::vector<std::uint32_t> nodes;
    nodes.reserve(map.size());
    // Key collection only (the generic param hides the unordered type from
    // pythia-lint); order is fixed by the sort below.
    for (const auto& [node, value] : map) nodes.push_back(node.value());
    std::sort(nodes.begin(), nodes.end());
    enc.put_u32(static_cast<std::uint32_t>(nodes.size()));
    for (std::uint32_t n : nodes) {
      enc.put_u32(n);
      encode_value(map.at(net::NodeId{n}));
    }
  };
  encode_node_map(dst_outstanding_,
                  [&enc](std::int64_t v) { enc.put_i64(v); });
  encode_node_map(curves_, [&enc](const std::vector<PredictionPoint>& curve) {
    enc.put_u32(static_cast<std::uint32_t>(curve.size()));
    for (const PredictionPoint& p : curve) {
      enc.put_time(p.at);
      enc.put_i64(p.cumulative.count());
    }
  });
  encode_node_map(predicted_totals_,
                  [&enc](std::int64_t v) { enc.put_i64(v); });

  enc.put_u64(received_);
  enc.put_u64(held_);
  enc.put_u64(batches_);
  enc.put_u64(expired_);
  enc.put_u64(purged_on_completion_);
  enc.put_u64(underflows_);
}

}  // namespace pythia::core
