// Per-pod collector shards with bounded admission.
//
// The sharded intent pipeline accumulates admitted shuffle intents into
// per-locality-group ("pod") queues between event cohorts. Admission is
// bounded *per pod*, never per physical shard, so the admit/refuse decision
// for any intent is independent of how pods are distributed over shards —
// the property that makes the pipeline byte-identical at any shard count.
// Bounded queues reuse the flow-table eviction semantics from the control
// plane: a full pod evicts its smallest-volume intent when the newcomer is
// strictly larger, otherwise the newcomer is refused synchronously (the
// prediction is lost and its traffic simply rides ECMP, the same "never
// worse than ECMP" degradation the rest of the system promises).
//
// Draining is canonical: all shards are merged and sorted by
// (pod, priority desc, src, dst, job, reduce, map, admission seq) — a total
// order, so the drained sequence is identical whatever the shard layout.
// Pair-contiguity within a (pod, priority) band is what the batched drain
// exploits: every intent for one (src, dst) aggregate in a cohort forms one
// contiguous run that coalesces into a single allocator submission.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/time.hpp"

namespace pythia::sim {
class StateEncoder;
}

namespace pythia::core {

/// An intent whose destination is resolved and which passed admission; the
/// unit the cohort drain operates on.
struct AdmittedIntent {
  std::int32_t pod = 0;       // locality group of the source server
  std::int32_t priority = 0;  // tenant priority; higher drains first
  std::uint64_t job_serial = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t reduce_index = 0;
  std::uint64_t map_index = 0;
  std::int64_t wire_bytes = 0;
  util::SimTime admitted_at;
  /// TTL horizon inherited from the held-intent that produced this entry
  /// (held_at + ttl); SimTime::max() when expiry is disabled. The drain
  /// re-checks it so an intent can never install past its TTL.
  util::SimTime expires_at = util::SimTime::max();
  std::uint64_t admit_seq = 0;  // global admission order; final tie-break
};

/// Canonical drain order: (pod, priority desc, src, dst, job, reduce, map,
/// admit_seq). Total order (admit_seq is unique), hence shard-layout
/// independent.
[[nodiscard]] bool canonical_intent_less(const AdmittedIntent& a,
                                         const AdmittedIntent& b);

class ShardedIntentQueue {
 public:
  struct Config {
    /// Physical shard count; pods map to shards by modulo. Purely a layout
    /// parameter — admission and drain results are identical for any value.
    std::size_t shard_count = 1;
    /// Max queued intents per pod between cohort boundaries; 0 = unbounded.
    std::size_t pod_capacity = 0;
  };

  enum class Admission : std::uint8_t {
    kAdmitted = 0,
    /// Admitted after evicting the pod's smallest-volume queued intent.
    kAdmittedWithEviction = 1,
    /// Refused synchronously: the pod is full and the newcomer is not
    /// strictly larger than the smallest queued intent.
    kRefused = 2,
  };

  explicit ShardedIntentQueue(Config cfg);

  /// Admits `intent` into its pod's queue (stamping admit_seq), applying the
  /// per-pod bound.
  Admission admit(AdmittedIntent intent);

  /// Removes and returns every queued intent in canonical order.
  std::vector<AdmittedIntent> drain();

  /// Drops queued intents belonging to `job_serial`; returns how many.
  std::size_t purge_job(std::uint64_t job_serial);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t refused() const { return refused_; }
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }

  /// Serializes queue content (pods ascending, intents in queue order) and
  /// the admission sequence counter. Deliberately shard-layout independent:
  /// two queues holding the same intents encode identically at any
  /// shard_count.
  void encode_state(sim::StateEncoder& enc) const;

 private:
  struct Shard {
    /// Per-pod FIFO accumulation; ordered map so encode/drain walk pods
    /// deterministically.
    std::map<std::int32_t, std::vector<AdmittedIntent>> pods;
  };
  [[nodiscard]] std::size_t shard_for(std::int32_t pod) const;

  // pythia-lint: allow(snapshot-skip) shard-count identity fixed by the
  // fingerprinted scenario config; restore constructs with the same value.
  Config cfg_;
  std::vector<Shard> shards_;
  // pythia-lint: allow(snapshot-skip) derived running total of the encoded
  // per-pod queues; decode recomputes it while re-admitting entries.
  std::size_t size_ = 0;
  std::uint64_t next_admit_seq_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace pythia::core
