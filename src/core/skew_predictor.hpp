// Early reducer-skew prediction from shuffle intents.
//
// The paper (Section V-C and the conclusions) points out that the prediction
// middleware has standalone value "in multiple other runtime optimizations
// of the Hadoop infrastructure beyond network scheduling, e.g. storage or
// early skew prediction". This component materializes that: it consumes the
// same per-(map, reducer) intents and, after only a prefix of maps has
// finished, extrapolates each reducer's final shuffle volume — early enough
// for a skew-mitigation system (repartitioning, reducer migration, storage
// placement) to act.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "core/prediction.hpp"

namespace pythia::core {

struct SkewEstimate {
  /// Extrapolated final volume per reducer index.
  std::vector<double> predicted_final_bytes;
  /// max/mean of the prediction — the job's skew factor.
  double skew_factor = 1.0;
  /// Index of the predicted hottest reducer.
  std::size_t hottest_reducer = 0;
  /// Fraction of maps observed when the estimate was made.
  double maps_observed_fraction = 0.0;
};

/// Per-job accumulator of intents; not tied to the network path at all.
class SkewPredictor {
 public:
  SkewPredictor(std::size_t job_serial, std::size_t num_maps,
                std::size_t num_reducers);

  /// Feed an intent (same stream the collector sees). Intents for other
  /// jobs are ignored.
  void ingest(const ShuffleIntent& intent);

  [[nodiscard]] std::size_t maps_observed() const { return maps_seen_; }
  [[nodiscard]] bool has_estimate() const { return maps_seen_ > 0; }

  /// Linear extrapolation: per-reducer running totals scaled by
  /// total_maps / maps_observed. Mapper-to-mapper jitter averages out, so
  /// accuracy tightens quickly with the observed prefix.
  [[nodiscard]] SkewEstimate estimate() const;

 private:
  std::size_t job_serial_;
  std::size_t num_maps_;
  std::vector<double> per_reducer_bytes_;
  std::unordered_map<std::size_t, bool> seen_maps_;
  std::size_t maps_seen_ = 0;
};

}  // namespace pythia::core
