// Pythia flow-allocation module (the OpenDaylight plugin of the paper).
//
// For each (mapper-server → reducer-server) aggregate with predicted
// outstanding volume, picks one of the k shortest paths and installs a
// forwarding rule ahead of flow arrival. Path choice is a first-fit
// bin-packing heuristic that combines:
//  * measured link load from the controller's link-load service, with the
//    shuffle-attributable portion subtracted (so over-subscription
//    background is what is avoided, not the job's own transfers), and
//  * communication intent: outstanding predicted bytes already packed onto
//    each link by earlier allocations.
// The aggregate goes to the path with the shortest expected drain time,
// which for equal outstanding volume is exactly "the path with the highest
// available bandwidth" from the paper.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/routing.hpp"
#include "sdn/controller.hpp"
#include "util/units.hpp"

namespace pythia::core {

/// Aggregation granularity for predicted flows (paper §IV): server pairs by
/// default; rack pairs to conserve switch forwarding state (one wildcard
/// rule per rack pair instead of one rule per server pair), at the cost of
/// packing precision.
enum class Aggregation { kServerPair, kRackPair };

struct AllocatorConfig {
  /// Floor for available-bandwidth estimates; avoids division by zero when a
  /// path is measured fully loaded.
  double min_available_bps = 1e3;
  /// If true (faithful Pythia) measured background load steers the choice;
  /// if false the allocator is load-blind and packs on intents alone — the
  /// "FlowComb-like, prediction-without-network-state" ablation arm.
  bool load_aware = true;
  Aggregation aggregation = Aggregation::kServerPair;
};

class Allocator {
 public:
  Allocator(sdn::Controller& controller, AllocatorConfig cfg = {});

  /// Adds predicted volume for an aggregate; allocates and installs a path
  /// the first time an idle aggregate becomes live. While suspended, volume
  /// is tracked but nothing is installed (traffic stays on ECMP).
  /// `intent_count` says how many shuffle intents the volume was coalesced
  /// from; it weights per-intent outcome accounting (suppressed installs
  /// here, install attempt/failure counters in the controller) so batching
  /// cannot understate failure rates.
  void add_predicted_volume(net::NodeId src_server, net::NodeId dst_server,
                            util::Bytes wire_bytes,
                            std::uint64_t intent_count = 1);

  /// True when adding volume for the pair is a pure bookkeeping add that
  /// cannot change any allocation decision: the allocator is suspended, or
  /// the aggregate is installed with outstanding volume. The batched drain
  /// coalesces the tail of a same-pair run once this holds — the exact
  /// condition under which the serial reference's remaining submissions are
  /// arithmetic only, which is what keeps the arms byte-identical.
  [[nodiscard]] bool pair_coalescable(net::NodeId src_server,
                                      net::NodeId dst_server) const;

  /// Retires volume as the corresponding transfers complete.
  void retire_volume(net::NodeId src_server, net::NodeId dst_server,
                     util::Bytes wire_bytes);

  /// Control-plane fallback (watchdog): stop installing, forget every path
  /// assignment, and zero the per-link packing state. Outstanding volumes
  /// are kept — they still describe pending transfers.
  void suspend();
  /// Re-engage after recovery: re-allocates every live aggregate largest-
  /// first against the current network state and reinstalls its rules.
  void resume();
  [[nodiscard]] bool suspended() const { return suspended_; }

  /// Outstanding predicted bytes currently assigned to a link.
  [[nodiscard]] util::Bytes link_outstanding(net::LinkId l) const;
  /// Outstanding predicted bytes for a pair (0 if unknown).
  [[nodiscard]] util::Bytes pair_outstanding(net::NodeId src,
                                             net::NodeId dst) const;

  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }
  [[nodiscard]] std::uint64_t reallocations() const { return reallocations_; }
  /// Installs skipped because the allocator was suspended by the watchdog.
  [[nodiscard]] std::uint64_t installs_suppressed() const {
    return installs_suppressed_;
  }
  /// Installs the controller refused synchronously (full flow tables, stale
  /// paths); the aggregate stayed on ECMP and nothing was packed.
  [[nodiscard]] std::uint64_t installs_refused() const {
    return installs_refused_;
  }

  /// The control plane this allocator installs through (the collector's
  /// cohort pipeline reaches topology groups and batch transactions via it).
  [[nodiscard]] sdn::Controller& controller() { return *controller_; }
  [[nodiscard]] const sdn::Controller& controller() const {
    return *controller_;
  }

  /// Expected drain time of `path` if `additional` bytes were packed onto it
  /// now (exposed for tests and the adversarial-allocation bench).
  [[nodiscard]] double drain_time_seconds(const net::Path& path,
                                          util::Bytes additional) const;

  /// The drain-time/first-fit path decision for an aggregate, as an interned
  /// id (invalid when the pair is disconnected). Public for the routing
  /// bench, which measures the per-flow decision latency in isolation.
  [[nodiscard]] net::PathId choose_path(net::NodeId src, net::NodeId dst,
                                        util::Bytes volume) const;

  /// Serializes allocator state for snapshots: every aggregate (sorted by
  /// key) with its packing assignment, per-link outstanding volume, the
  /// suspension flag, and counters.
  void encode_state(sim::StateEncoder& enc) const;

 private:
  struct Aggregate {
    std::int64_t outstanding = 0;
    bool installed = false;
    /// Interned effective path: full host path, or inter-rack chain (rack
    /// mode). Ids are canonical per link sequence, so equality of ids is
    /// equality of paths.
    net::PathId path;
    /// Last host pair seen for this aggregate (lets resume() re-allocate
    /// without decoding keys; in rack mode, any representative pair).
    net::NodeId src;
    net::NodeId dst;
  };
  /// Host-pair key in server mode; rack-pair key (tagged) in rack mode.
  [[nodiscard]] std::uint64_t aggregate_key(net::NodeId src,
                                            net::NodeId dst) const;
  void pack_onto(net::PathId path, std::int64_t bytes);
  [[nodiscard]] bool install(net::NodeId src, net::NodeId dst,
                             net::PathId chosen, util::Bytes volume_hint,
                             std::uint64_t intent_weight = 1);
  /// Strips host access links when packing at rack granularity (interning
  /// the chain, hence non-const).
  [[nodiscard]] net::PathId effective_path(net::PathId chosen);

  sdn::Controller* controller_;
  // pythia-lint: allow(snapshot-skip) config identity covered by the
  // scenario fingerprint; restore constructs with the same AllocatorConfig.
  AllocatorConfig cfg_;
  std::unordered_map<std::uint64_t, Aggregate> aggregates_;
  std::vector<std::int64_t> link_outstanding_;
  bool suspended_ = false;
  std::uint64_t allocations_ = 0;
  std::uint64_t reallocations_ = 0;
  std::uint64_t installs_suppressed_ = 0;
  std::uint64_t installs_refused_ = 0;
};

}  // namespace pythia::core
