#include "core/watchdog.hpp"

#include "core/allocator.hpp"
#include "sdn/controller.hpp"
#include "sim/snapshot.hpp"
#include "util/log.hpp"

namespace pythia::core {

ControlPlaneWatchdog::ControlPlaneWatchdog(sim::Simulation& sim,
                                           sdn::Controller& controller,
                                           Allocator& allocator,
                                           WatchdogConfig cfg)
    : sim_(&sim), controller_(&controller), allocator_(&allocator), cfg_(cfg) {}

void ControlPlaneWatchdog::note_emission(util::SimTime at) {
  if (!cfg_.enabled) return;
  if (pending_since_.ns() < 0) pending_since_ = at;
}

void ControlPlaneWatchdog::note_notification(util::SimTime at) {
  if (!cfg_.enabled) return;
  // Any notification proves the management channel moved data end-to-end;
  // the staleness clock restarts from the next unanswered emission.
  pending_since_ = util::SimTime{-1};
  last_notification_ = at;
}

bool ControlPlaneWatchdog::notifications_stale() const {
  if (pending_since_.ns() < 0) return false;
  return sim_->now() - pending_since_ > cfg_.staleness_threshold;
}

void ControlPlaneWatchdog::refresh_failure_window() {
  const util::SimTime now = sim_->now();
  if (window_start_.ns() >= 0 && now - window_start_ < cfg_.failure_window) {
    return;
  }
  window_start_ = now;
  window_base_attempts_ = controller_->install_attempt_intents();
  window_base_failures_ = controller_->install_failure_intents();
  window_base_table_rejects_ = controller_->table_reject_intents();
}

double ControlPlaneWatchdog::recent_install_failure_rate() const {
  // Table-admission refusals never become attempts, but a rule Pythia cannot
  // place is just as lost to it as one the switch rejected — count both.
  // Intent-weighted: a refused rule carrying a batch of 30 coalesced intents
  // strands 30 predictions, not 1, and the ECMP-fallback trigger must see a
  // failure rate proportional to the stranded traffic.
  const std::uint64_t refusals =
      controller_->table_reject_intents() - window_base_table_rejects_;
  const std::uint64_t attempts =
      controller_->install_attempt_intents() - window_base_attempts_ +
      refusals;
  if (attempts == 0) return 0.0;
  const std::uint64_t failures =
      controller_->install_failure_intents() - window_base_failures_ +
      refusals;
  return static_cast<double>(failures) / static_cast<double>(attempts);
}

bool ControlPlaneWatchdog::install_failures_excessive() const {
  const std::uint64_t attempts =
      controller_->install_attempt_intents() - window_base_attempts_ +
      (controller_->table_reject_intents() - window_base_table_rejects_);
  if (attempts < cfg_.min_install_samples) return false;
  return recent_install_failure_rate() >= cfg_.install_failure_threshold;
}

void ControlPlaneWatchdog::evaluate() {
  if (!cfg_.enabled) return;
  refresh_failure_window();
  const bool healthy = !notifications_stale() && !install_failures_excessive();

  if (engaged_ && !healthy) {
    engaged_ = false;
    healthy_since_ = util::SimTime{-1};
    ++fallbacks_;
    allocator_->suspend();
    const std::size_t cleared = controller_->clear_host_rules();
    PYTHIA_LOG(kWarn, "watchdog")
        << "control plane degraded (stale=" << notifications_stale()
        << " failure_rate=" << recent_install_failure_rate()
        << "); fell back to ECMP, cleared " << cleared << " rules";
    return;
  }

  if (!engaged_ && healthy) {
    if (cfg_.max_fallbacks > 0 && fallbacks_ >= cfg_.max_fallbacks) {
      return;  // circuit breaker open: this control plane keeps flapping
    }
    if (healthy_since_.ns() < 0) {
      healthy_since_ = sim_->now();
      return;
    }
    if (sim_->now() - healthy_since_ >= cfg_.recovery_grace) {
      engaged_ = true;
      healthy_since_ = util::SimTime{-1};
      ++reengagements_;
      allocator_->resume();
      PYTHIA_LOG(kInfo, "watchdog")
          << "control plane recovered; Pythia re-engaged";
    }
    return;
  }

  if (!engaged_ && !healthy) healthy_since_ = util::SimTime{-1};
}

void ControlPlaneWatchdog::encode_state(sim::StateEncoder& enc) const {
  enc.put_bool(engaged_);
  enc.put_time(pending_since_);
  enc.put_time(last_notification_);
  enc.put_time(healthy_since_);
  enc.put_time(window_start_);
  enc.put_u64(window_base_attempts_);
  enc.put_u64(window_base_failures_);
  enc.put_u64(window_base_table_rejects_);
  enc.put_u64(fallbacks_);
  enc.put_u64(reengagements_);
}

}  // namespace pythia::core
