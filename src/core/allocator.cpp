#include "core/allocator.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "sim/snapshot.hpp"
#include "util/log.hpp"

namespace pythia::core {

Allocator::Allocator(sdn::Controller& controller, AllocatorConfig cfg)
    : controller_(&controller),
      cfg_(cfg),
      link_outstanding_(controller.topology().link_count(), 0) {}

util::Bytes Allocator::link_outstanding(net::LinkId l) const {
  return util::Bytes{link_outstanding_[l.value()]};
}

std::uint64_t Allocator::aggregate_key(net::NodeId src, net::NodeId dst) const {
  if (cfg_.aggregation == Aggregation::kRackPair) {
    const auto& topo = controller_->topology();
    const auto src_rack =
        static_cast<std::uint32_t>(topo.node(src).rack) & 0x7fffffffu;
    const auto dst_rack = static_cast<std::uint32_t>(topo.node(dst).rack);
    // Tag rack keys with the top bit so they can never collide with host
    // keys if the policy is toggled between calls.
    return (1ULL << 63) | (static_cast<std::uint64_t>(src_rack) << 32) |
           dst_rack;
  }
  return (static_cast<std::uint64_t>(src.value()) << 32) | dst.value();
}

util::Bytes Allocator::pair_outstanding(net::NodeId src,
                                        net::NodeId dst) const {
  const auto it = aggregates_.find(aggregate_key(src, dst));
  return it == aggregates_.end() ? util::Bytes::zero()
                                 : util::Bytes{it->second.outstanding};
}

bool Allocator::pair_coalescable(net::NodeId src_server,
                                 net::NodeId dst_server) const {
  if (suspended_) return true;
  const auto it = aggregates_.find(aggregate_key(src_server, dst_server));
  return it != aggregates_.end() && it->second.installed &&
         it->second.outstanding > 0;
}

net::PathId Allocator::effective_path(net::PathId chosen) {
  if (cfg_.aggregation == Aggregation::kServerPair) return chosen;
  const net::Path& path = controller_->path(chosen);
  // An intra-rack path (host→ToR→host, 2 links) has no inter-ToR segment to
  // aggregate over; stripping the access links would leave an empty rack rule.
  // Such pairs are installed at server granularity instead (see install()).
  if (path.links.size() < 3) return chosen;
  net::Path chain;
  chain.links.assign(path.links.begin() + 1, path.links.end() - 1);
  return controller_->intern_path(std::move(chain));
}

bool Allocator::install(net::NodeId src, net::NodeId dst, net::PathId chosen,
                        util::Bytes volume_hint,
                        std::uint64_t intent_weight) {
  const net::Path& path = controller_->path(chosen);
  if (cfg_.aggregation == Aggregation::kServerPair ||
      path.links.size() < 3) {
    return controller_->install_path_id(src, dst, chosen, volume_hint,
                                        intent_weight);
  }
  const auto& topo = controller_->topology();
  controller_->install_rack_path(topo.node(src).rack, topo.node(dst).rack,
                                 controller_->path(effective_path(chosen)));
  return true;
}

double Allocator::drain_time_seconds(const net::Path& path,
                                     util::Bytes additional) const {
  // Per-link drain: each link must move its own outstanding predicted bytes
  // plus the new volume through its background-free headroom; the slowest
  // link bounds the path.
  double worst = 0.0;
  for (net::LinkId l : path.links) {
    const double cap = controller_->topology().link(l).capacity.bps();
    const double background =
        cfg_.load_aware ? controller_->snapshot_background_load(l).bps() : 0.0;
    const double avail = std::max(cap - background, cfg_.min_available_bps);
    const double bits =
        8.0 * (static_cast<double>(link_outstanding_[l.value()]) +
               additional.as_double());
    worst = std::max(worst, bits / avail);
  }
  return worst;
}

net::PathId Allocator::choose_path(net::NodeId src, net::NodeId dst,
                                   util::Bytes volume) const {
  const auto candidates = controller_->routing().paths(src, dst);
  net::PathId best;
  double best_drain = std::numeric_limits<double>::infinity();
  std::int64_t best_packed = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const net::Path& p = candidates[i];
    const double drain = drain_time_seconds(p, volume);
    // Tie-break by total outstanding volume already packed along the path —
    // links shared by all candidates (host access links) often dominate the
    // bottleneck term, and the lighter middle segment is still preferable.
    std::int64_t packed = 0;
    for (net::LinkId l : p.links) packed += link_outstanding_[l.value()];
    if (drain < best_drain - 1e-12 ||
        (drain < best_drain + 1e-12 && packed < best_packed)) {
      best_drain = std::min(best_drain, drain);
      best_packed = packed;
      best = candidates.id(i);
    }
  }
  return best;
}

void Allocator::pack_onto(net::PathId path, std::int64_t bytes) {
  for (net::LinkId l : controller_->path(path).links) {
    link_outstanding_[l.value()] =
        std::max<std::int64_t>(0, link_outstanding_[l.value()] + bytes);
  }
}

void Allocator::add_predicted_volume(net::NodeId src_server,
                                     net::NodeId dst_server,
                                     util::Bytes wire_bytes,
                                     std::uint64_t intent_count) {
  assert(wire_bytes >= util::Bytes::zero());
  Aggregate& agg = aggregates_[aggregate_key(src_server, dst_server)];
  agg.src = src_server;
  agg.dst = dst_server;

  if (suspended_) {
    // Watchdog fallback: keep the books, touch nothing in the network. Every
    // coalesced intent counts as a suppressed install — the fallback denies
    // each of them a rule, not the submission as a whole.
    agg.outstanding += wire_bytes.count();
    installs_suppressed_ += intent_count;
    return;
  }

  if (!agg.installed || agg.outstanding == 0) {
    // Fresh (or fully drained) aggregate: (re)allocate against the current
    // network state, then install the forwarding rule ahead of the flows.
    const net::PathId chosen =
        choose_path(src_server, dst_server, wire_bytes);
    if (!chosen.valid()) {
      PYTHIA_LOG(kWarn, "pythia")
          << "no path between server " << src_server.value() << " and "
          << dst_server.value() << "; aggregate left to ECMP";
      agg.outstanding += wire_bytes.count();
      return;
    }
    if (!install(src_server, dst_server, chosen,
                 util::Bytes{agg.outstanding + wire_bytes.count()},
                 intent_count)) {
      // Controller refused the rule (full flow table, stale path): the
      // aggregate rides ECMP, so packing the chosen path would poison the
      // books for every later allocation.
      ++installs_refused_;
      agg.installed = false;
      agg.outstanding += wire_bytes.count();
      return;
    }
    const net::PathId packed = effective_path(chosen);
    if (agg.installed && agg.path != packed) ++reallocations_;
    agg.path = packed;
    agg.installed = true;
    ++allocations_;
  }
  agg.outstanding += wire_bytes.count();
  pack_onto(agg.path, wire_bytes.count());
}

void Allocator::suspend() {
  if (suspended_) return;
  suspended_ = true;
  // pythia-lint: allow(unordered-iter) independent per-entry flag clear;
  // visit order cannot affect the resulting state
  for (auto& [_, agg] : aggregates_) agg.installed = false;
  std::fill(link_outstanding_.begin(), link_outstanding_.end(), 0);
}

void Allocator::resume() {
  if (!suspended_) return;
  suspended_ = false;
  // Re-allocate every live aggregate, largest first (the same FFD order the
  // collector uses), against the network as it looks right now.
  std::vector<std::pair<std::uint64_t, Aggregate*>> live;
  // pythia-lint: allow(unordered-iter) collection only; `live` is sorted
  // just below with a total-order key tie-break before any allocation
  for (auto& [key, agg] : aggregates_) {
    if (agg.outstanding > 0) live.emplace_back(key, &agg);
  }
  std::sort(live.begin(), live.end(), [](const auto& a, const auto& b) {
    if (a.second->outstanding != b.second->outstanding) {
      return a.second->outstanding > b.second->outstanding;
    }
    return a.first < b.first;
  });
  for (auto& [key, agg] : live) {
    const net::PathId chosen =
        choose_path(agg->src, agg->dst, util::Bytes{agg->outstanding});
    if (!chosen.valid()) continue;
    if (!install(agg->src, agg->dst, chosen,
                 util::Bytes{agg->outstanding})) {
      ++installs_refused_;
      continue;
    }
    agg->path = effective_path(chosen);
    agg->installed = true;
    ++allocations_;
    pack_onto(agg->path, agg->outstanding);
  }
}

void Allocator::retire_volume(net::NodeId src_server, net::NodeId dst_server,
                              util::Bytes wire_bytes) {
  const auto it = aggregates_.find(aggregate_key(src_server, dst_server));
  if (it == aggregates_.end()) return;  // transfer was never predicted
  Aggregate& agg = it->second;
  const std::int64_t retired =
      std::min<std::int64_t>(agg.outstanding, wire_bytes.count());
  if (retired <= 0) return;
  agg.outstanding -= retired;
  if (agg.installed) pack_onto(agg.path, -retired);
}

void Allocator::encode_state(sim::StateEncoder& enc) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(aggregates_.size());
  // pythia-lint: allow(unordered-iter) key collection only; sorted below
  for (const auto& [key, agg] : aggregates_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  enc.put_u32(static_cast<std::uint32_t>(keys.size()));
  for (std::uint64_t key : keys) {
    const Aggregate& agg = aggregates_.at(key);
    enc.put_u64(key);
    enc.put_i64(agg.outstanding);
    enc.put_bool(agg.installed);
    // Valid-flag + link chain instead of the raw pool id: interning order
    // tracks query order in the lazy routing graph, while the chain (path
    // identity) is pure behavior.
    enc.put_bool(agg.path.valid());
    if (agg.path.valid()) {
      const net::Path& p = controller_->path(agg.path);
      enc.put_u32(static_cast<std::uint32_t>(p.links.size()));
      for (net::LinkId l : p.links) enc.put_u32(l.value());
    }
    enc.put_u32(agg.src.value());
    enc.put_u32(agg.dst.value());
  }
  enc.put_u32(static_cast<std::uint32_t>(link_outstanding_.size()));
  for (std::int64_t v : link_outstanding_) enc.put_i64(v);
  enc.put_bool(suspended_);
  enc.put_u64(allocations_);
  enc.put_u64(reallocations_);
  enc.put_u64(installs_suppressed_);
  enc.put_u64(installs_refused_);
}

}  // namespace pythia::core
