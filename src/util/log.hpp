// Lightweight leveled logging.
//
// Each simulation is single-threaded (discrete-event), but the parallel
// sweep runner executes many simulations concurrently, so the logger is
// thread-safe: the level is an atomic and emission holds a mutex so lines
// from different workers never interleave. It exists to make traces
// greppable ("[shuffle] t=12.4s ...") and is compiled to almost nothing at
// the default Warn level.
#pragma once

#include <sstream>
#include <string>

namespace pythia::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Global log threshold; messages below it are discarded. Safe to call from
/// any thread (atomic; a level change may race in-flight messages but never
/// corrupts output).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one formatted line to stderr: "LEVEL [component] message".
void log_line(LogLevel level, const std::string& component,
              const std::string& message);

/// Flushes the log sink (and stdout). The crash handler calls this on fatal
/// signals so buffered lines are not lost with the process; NOT
/// async-signal-safe in the strict sense (fflush), but the process is dying
/// anyway and losing the tail of the log is the alternative.
void flush_logs();

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, component_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};
}  // namespace detail

/// Usage: PYTHIA_LOG(kInfo, "net") << "flow " << id << " done";
#define PYTHIA_LOG(level, component)                            \
  if (::pythia::util::LogLevel::level < ::pythia::util::log_level()) { \
  } else                                                        \
    ::pythia::util::detail::LogStream(::pythia::util::LogLevel::level, component)

}  // namespace pythia::util
