// Simulation clock types.
//
// Simulated time is an integer nanosecond count so that event ordering is
// exact and runs are bit-reproducible across platforms; doubles appear only
// at the edges (rate computations, report output).
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

#include "util/units.hpp"

namespace pythia::util {

/// A span of simulated time, in integer nanoseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  [[nodiscard]] static constexpr Duration from_seconds(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9 + 0.5)};
  }
  [[nodiscard]] static constexpr Duration millis(std::int64_t ms) {
    return Duration{ms * 1'000'000};
  }
  [[nodiscard]] static constexpr Duration micros(std::int64_t us) {
    return Duration{us * 1'000};
  }
  [[nodiscard]] static constexpr Duration seconds_i(std::int64_t s) {
    return Duration{s * 1'000'000'000};
  }
  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }
  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration{a.ns_ + b.ns_};
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration{a.ns_ - b.ns_};
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration{a.ns_ * k};
  }
  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  std::int64_t ns_ = 0;
};

/// An absolute point on the simulation clock (nanoseconds since run start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double seconds() const {
    return static_cast<double>(ns_) / 1e9;
  }

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  [[nodiscard]] static constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + 0.5)};
  }

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime{t.ns_ + d.ns()};
  }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime{t.ns_ - d.ns()};
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration{a.ns_ - b.ns_};
  }
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

 private:
  std::int64_t ns_ = 0;
};

/// Time needed to move `b` bytes at rate `r`; Duration::max() if r == 0.
[[nodiscard]] constexpr Duration transfer_time(Bytes b, BitsPerSec r) {
  if (r.bps() <= 0.0) return Duration::max();
  const double secs = b.as_double() / r.bytes_per_sec();
  // Guard against overflow when converting enormous spans.
  if (secs >= 9.0e9) return Duration::max();
  return Duration::from_seconds(secs);
}

/// Bytes moved in `d` at rate `r`.
[[nodiscard]] constexpr Bytes bytes_in(Duration d, BitsPerSec r) {
  return Bytes{static_cast<std::int64_t>(d.seconds() * r.bytes_per_sec() + 0.5)};
}

/// Formats a duration as "12.345 s" / "8.2 ms" for reports.
std::string format_duration(Duration d);

}  // namespace pythia::util
