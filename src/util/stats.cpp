#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace pythia::util {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double SampleSet::percentile(double p) const {
  assert(!xs_.empty());
  assert(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (xs_.size() == 1) return xs_[0];
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

double SampleSet::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double SampleSet::min() const {
  assert(!xs_.empty());
  ensure_sorted();
  return xs_.front();
}

double SampleSet::max() const {
  assert(!xs_.empty());
  ensure_sorted();
  return xs_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x, std::uint64_t weight) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::int64_t>((x - lo_) / span *
                                       static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = peak == 0
                         ? std::size_t{0}
                         : static_cast<std::size_t>(
                               static_cast<double>(counts_[i]) /
                               static_cast<double>(peak) *
                               static_cast<double>(width));
    out << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(std::max<std::size_t>(bar, 1), '#') << " "
        << counts_[i] << "\n";
  }
  return out.str();
}

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sumsq = 0.0;
  for (double x : xs) {
    sum += x;
    sumsq += x * x;
  }
  if (sumsq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sumsq);
}

double coeff_of_variation(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean() == 0.0 ? 0.0 : s.stddev() / s.mean();
}

}  // namespace pythia::util
