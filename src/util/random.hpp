// Deterministic random-number utilities.
//
// Every stochastic component of the simulator (task durations, ECMP port
// hashes, background-traffic placement, key skew) draws from its own
// explicitly seeded stream so that experiments are reproducible and
// components can be re-seeded independently (paper's "average of multiple
// executions" becomes a seed sweep).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pythia::util {

/// SplitMix64 — used to expand a single user seed into stream seeds.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality generator for the simulation loops.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t n);

  /// Exponential variate with the given mean.
  double exponential(double mean);

  /// Gaussian variate (Box–Muller, no caching so draws stay stream-ordered).
  double gaussian(double mean, double stddev);

  /// Raw generator state, for snapshot serialization and divergence checks.
  /// Two streams that consumed identical draw sequences from the same seed
  /// hold identical words.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const {
    return state_;
  }
  /// Overwrites the generator state (snapshot tooling only).
  void set_state(const std::array<std::uint64_t, 4>& s) { state_ = s; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Samples from a Zipf(s) distribution over ranks 1..n via inverse-CDF on a
/// precomputed table. Used to model MapReduce key-space skew.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  [[nodiscard]] std::size_t n() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return exponent_; }

  /// Returns a rank in [0, n).
  std::size_t sample(Xoshiro256& rng) const;

  /// Probability mass of rank i (0-based).
  [[nodiscard]] double pmf(std::size_t i) const;

 private:
  double exponent_;
  std::vector<double> cdf_;  // cumulative, cdf_.back() == 1.0
};

/// Derives a child seed for component `tag` from a root seed; stable across
/// runs, unrelated streams for different tags.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t root, std::uint64_t tag);

/// Splits a root seed into the `lane`-th of a family of independent run
/// seeds. Used by the parallel sweep runner to give every fanned-out run its
/// own RNG universe: the derivation depends only on (root, lane), never on
/// which worker thread executes the run or in what order, so a sweep is
/// bit-reproducible for any thread count. Distinct from derive_seed's
/// key-space so component tags and run lanes can never collide.
[[nodiscard]] std::uint64_t split_seed(std::uint64_t root, std::uint64_t lane);

/// 64-bit mix of an arbitrary byte string (FNV-1a + finalizer); used for
/// ECMP 5-tuple hashing.
[[nodiscard]] std::uint64_t hash_bytes(const void* data, std::size_t len);

/// Convenience: hash a pack of integers (used for flow 5-tuples).
[[nodiscard]] std::uint64_t hash_u64s(std::initializer_list<std::uint64_t> vs);

}  // namespace pythia::util
