#include "util/csv.hpp"

#include <cassert>
#include <stdexcept>

namespace pythia::util {

namespace {
bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}
}  // namespace

std::string CsvWriter::escape(const std::string& field) {
  if (!needs_quoting(field)) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), arity_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_row(header);
  rows_ = 0;  // header does not count
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  assert(cells.size() == arity_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

}  // namespace pythia::util
