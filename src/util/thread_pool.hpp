// Work-queue thread pool for fanning independent simulation runs out across
// cores.
//
// The pool is deliberately minimal: FIFO task queue, fixed worker count,
// blocking wait_idle() between batches. Determinism of anything built on top
// must come from task *independence* (each task owns its Simulation, Fabric,
// and RNG streams) plus index-ordered result gathering — never from queue
// scheduling order, which is unspecified.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pythia::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means one per hardware core (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw (wrap and capture exceptions at
  /// the call site); the pool aborts on escaped exceptions by design.
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. Establishes a
  /// happens-before edge with all completed tasks, so results they wrote are
  /// visible to the caller without further synchronization.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Total tasks fully executed since construction (live progress counter).
  [[nodiscard]] std::uint64_t tasks_completed() const;
  /// Cumulative seconds workers spent inside tasks (for utilization).
  [[nodiscard]] double busy_seconds() const;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stopping
  std::condition_variable idle_cv_;   // wait_idle: queue empty, none active
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::uint64_t tasks_completed_ = 0;
  double busy_seconds_ = 0.0;
};

}  // namespace pythia::util
