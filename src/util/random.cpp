#include "util/random.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace pythia::util {

std::uint64_t Xoshiro256::below(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = -n % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform01();
  // Avoid log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Xoshiro256::gaussian(double mean, double stddev) {
  // Box–Muller; draw both uniforms every call so the stream position is a
  // pure function of call count.
  double u1 = uniform01();
  const double u2 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) : exponent_(exponent) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Xoshiro256& rng) const {
  const double u = rng.uniform01();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double ZipfSampler::pmf(std::size_t i) const {
  assert(i < cdf_.size());
  return i == 0 ? cdf_[0] : cdf_[i] - cdf_[i - 1];
}

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t tag) {
  SplitMix64 sm(root ^ (tag * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  sm.next();
  return sm.next();
}

std::uint64_t split_seed(std::uint64_t root, std::uint64_t lane) {
  // Domain-separate from derive_seed with a distinct additive constant, then
  // run two SplitMix64 rounds so adjacent lanes land in unrelated states.
  SplitMix64 sm(root + 0x632be59bd9b4e019ULL);
  const std::uint64_t mixed_root = sm.next();
  SplitMix64 lane_mix(mixed_root ^ (lane * 0xd1342543de82ef95ULL + 1));
  lane_mix.next();
  return lane_mix.next();
}

std::uint64_t hash_bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  // Final avalanche (SplitMix64 finalizer).
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::uint64_t hash_u64s(std::initializer_list<std::uint64_t> vs) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t v : vs) {
    h ^= hash_bytes(&v, sizeof(v)) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace pythia::util
