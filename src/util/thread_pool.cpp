#include "util/thread_pool.hpp"

#include <chrono>

namespace pythia::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

std::uint64_t ThreadPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_completed_;
}

double ThreadPool::busy_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return busy_seconds_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    const auto t0 = std::chrono::steady_clock::now();
    task();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      ++tasks_completed_;
      busy_seconds_ += dt.count();
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace pythia::util
