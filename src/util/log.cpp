#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <iomanip>
#include <mutex>
#include <sstream>

#include "util/time.hpp"
#include "util/units.hpp"

namespace pythia::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

/// Serializes emission so lines from concurrent sweep workers never
/// interleave mid-line (stdio locks per call, but future sinks may not).
std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& component,
              const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::fprintf(stderr, "%s [%s] %s\n", level_name(level), component.c_str(),
               message.c_str());
}

void flush_logs() {
  std::fflush(stdout);
  std::fflush(stderr);
}

// --- unit formatting (declared in units.hpp / time.hpp) ---

std::string format_bytes(Bytes b) {
  const double v = b.as_double();
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  if (v >= 1e12) {
    os << v / 1e12 << " TB";
  } else if (v >= 1e9) {
    os << v / 1e9 << " GB";
  } else if (v >= 1e6) {
    os << v / 1e6 << " MB";
  } else if (v >= 1e3) {
    os << v / 1e3 << " KB";
  } else {
    os << b.count() << " B";
  }
  return os.str();
}

std::string format_rate(BitsPerSec r) {
  const double v = r.bps();
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  if (v >= 1e9) {
    os << v / 1e9 << " Gbps";
  } else if (v >= 1e6) {
    os << v / 1e6 << " Mbps";
  } else if (v >= 1e3) {
    os << v / 1e3 << " Kbps";
  } else {
    os << v << " bps";
  }
  return os.str();
}

std::string format_duration(Duration d) {
  const double s = d.seconds();
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  if (d == Duration::max()) {
    os << "inf";
  } else if (s >= 1.0) {
    os << s << " s";
  } else if (s >= 1e-3) {
    os << s * 1e3 << " ms";
  } else {
    os << s * 1e6 << " us";
  }
  return os.str();
}

}  // namespace pythia::util
