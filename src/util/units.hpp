// Strong unit types used throughout the Pythia simulator.
//
// The physics of the fluid network model mixes byte counts, bit rates and
// durations; encoding each in its own vocabulary type keeps unit confusion
// (the classic bytes-vs-bits-per-second bug) out of the hot paths while
// compiling down to plain integer/double arithmetic.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace pythia::util {

/// A byte count. Signed so that subtraction of counters is well-defined;
/// negative values indicate accounting bugs and are asserted against at use
/// sites rather than silently clamped.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(std::int64_t count) : count_(count) {}

  [[nodiscard]] constexpr std::int64_t count() const { return count_; }
  [[nodiscard]] constexpr double as_double() const {
    return static_cast<double>(count_);
  }

  constexpr Bytes& operator+=(Bytes other) {
    count_ += other.count_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes other) {
    count_ -= other.count_;
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes{a.count_ + b.count_};
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes{a.count_ - b.count_};
  }
  friend constexpr Bytes operator*(Bytes a, std::int64_t k) {
    return Bytes{a.count_ * k};
  }
  friend constexpr Bytes operator*(std::int64_t k, Bytes a) { return a * k; }
  friend constexpr auto operator<=>(Bytes, Bytes) = default;

  /// Scales by a dimensionless factor, rounding to the nearest byte.
  [[nodiscard]] constexpr Bytes scaled(double factor) const {
    return Bytes{static_cast<std::int64_t>(static_cast<double>(count_) * factor + 0.5)};
  }

  static constexpr Bytes zero() { return Bytes{0}; }
  static constexpr Bytes max() {
    return Bytes{std::numeric_limits<std::int64_t>::max()};
  }

 private:
  std::int64_t count_ = 0;
};

constexpr Bytes operator""_B(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v)};
}
constexpr Bytes operator""_KB(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v) * 1000};
}
constexpr Bytes operator""_MB(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v) * 1000 * 1000};
}
constexpr Bytes operator""_GB(unsigned long long v) {
  return Bytes{static_cast<std::int64_t>(v) * 1000 * 1000 * 1000};
}

/// A data rate in bits per second, stored as double because fluid max-min
/// shares are fractional.
class BitsPerSec {
 public:
  constexpr BitsPerSec() = default;
  constexpr explicit BitsPerSec(double bps) : bps_(bps) {}

  [[nodiscard]] constexpr double bps() const { return bps_; }
  [[nodiscard]] constexpr double bytes_per_sec() const { return bps_ / 8.0; }

  constexpr BitsPerSec& operator+=(BitsPerSec other) {
    bps_ += other.bps_;
    return *this;
  }
  constexpr BitsPerSec& operator-=(BitsPerSec other) {
    bps_ -= other.bps_;
    return *this;
  }
  friend constexpr BitsPerSec operator+(BitsPerSec a, BitsPerSec b) {
    return BitsPerSec{a.bps_ + b.bps_};
  }
  friend constexpr BitsPerSec operator-(BitsPerSec a, BitsPerSec b) {
    return BitsPerSec{a.bps_ - b.bps_};
  }
  friend constexpr BitsPerSec operator*(BitsPerSec a, double k) {
    return BitsPerSec{a.bps_ * k};
  }
  friend constexpr BitsPerSec operator*(double k, BitsPerSec a) { return a * k; }
  friend constexpr BitsPerSec operator/(BitsPerSec a, double k) {
    return BitsPerSec{a.bps_ / k};
  }
  friend constexpr auto operator<=>(BitsPerSec, BitsPerSec) = default;

  static constexpr BitsPerSec zero() { return BitsPerSec{0.0}; }

 private:
  double bps_ = 0.0;
};

constexpr BitsPerSec operator""_bps(long double v) {
  return BitsPerSec{static_cast<double>(v)};
}
constexpr BitsPerSec operator""_Mbps(unsigned long long v) {
  return BitsPerSec{static_cast<double>(v) * 1e6};
}
constexpr BitsPerSec operator""_Gbps(unsigned long long v) {
  return BitsPerSec{static_cast<double>(v) * 1e9};
}

/// Formats a byte count with a human-readable suffix ("1.5 GB").
std::string format_bytes(Bytes b);
/// Formats a rate with a human-readable suffix ("9.4 Gbps").
std::string format_rate(BitsPerSec r);

}  // namespace pythia::util
