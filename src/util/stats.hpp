// Small statistics helpers used by experiment reports and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace pythia::util {

/// Streaming mean/variance/min/max (Welford); O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores samples; exact percentiles on demand. Fine at experiment scale.
class SampleSet {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double percentile(double p) const;  // p in [0,100]
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] const std::vector<double>& samples() const { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width linear histogram over [lo, hi); out-of-range values clamp to
/// the edge bins. Used for flow-size and fetch-latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
    return counts_[i];
  }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Compact ASCII rendering, one line per non-empty bin.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Jain's fairness index over a set of allocations; 1.0 == perfectly fair.
[[nodiscard]] double jain_fairness(const std::vector<double>& xs);

/// Coefficient of variation (stddev/mean); 0 when mean == 0.
[[nodiscard]] double coeff_of_variation(const std::vector<double>& xs);

}  // namespace pythia::util
