// Minimal CSV writer for exporting timelines and experiment series.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pythia::util {

/// Writes RFC-4180-ish CSV (quotes fields containing comma/quote/newline).
class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends a data row; must match the header arity.
  void write_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

  /// Escapes a single field per CSV quoting rules.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

}  // namespace pythia::util
