// Console table rendering for paper-style experiment output.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pythia::util {

/// Builds an aligned ASCII table row by row; the benches use this to print
/// the same rows/series the paper's figures report.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Formatting helpers for cells.
  static std::string num(double v, int precision = 2);
  static std::string percent(double fraction, int precision = 1);
  static std::string seconds(double s, int precision = 1);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pythia::util
