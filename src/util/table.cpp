#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pythia::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

std::string Table::seconds(double s, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << s << " s";
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << " " << std::left << std::setw(static_cast<int>(widths[c]))
          << row[c] << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&] {
    out << "+";
    for (std::size_t w : widths) {
      out << std::string(w + 2, '-') << "+";
    }
    out << "\n";
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return out.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace pythia::util
