#include "sim/fault_channel.hpp"

#include <algorithm>
#include <utility>

#include "sim/snapshot.hpp"

namespace pythia::sim {

FaultChannel::FaultChannel(Simulation& sim, std::string stream_name,
                           FaultChannelConfig cfg)
    : sim_(&sim), stream_(std::move(stream_name)), cfg_(cfg) {}

util::Duration FaultChannel::sample_delay() {
  util::Duration delay = cfg_.base_delay;
  if (cfg_.jitter > util::Duration::zero()) {
    auto& rng = sim_->rng(stream_);
    const double extra =
        cfg_.jitter_kind == FaultChannelConfig::Jitter::kUniform
            ? rng.uniform(0.0, cfg_.jitter.seconds())
            : rng.exponential(cfg_.jitter.seconds());
    delay += util::Duration::from_seconds(extra);
  }
  return delay;
}

void FaultChannel::schedule_delivery(std::function<void()> deliver) {
  const util::Duration delay = sample_delay();
  if (delay == util::Duration::zero()) {
    // No transit time sampled (e.g. drop-only channel): deliver in place so
    // the event stream stays as close to the fault-free one as possible.
    ++delivered_;
    deliver();
    return;
  }
  const util::SimTime at = sim_->now() + delay;
  if (at < last_scheduled_) ++reordered_;
  last_scheduled_ = std::max(last_scheduled_, at);
  sim_->at(at, [this, deliver = std::move(deliver)] {
    ++delivered_;
    deliver();
  });
}

void FaultChannel::send(std::function<void()> deliver) {
  ++offered_;
  if (cfg_.transparent()) {
    ++delivered_;
    deliver();
    return;
  }
  if (cfg_.drop_probability > 0.0 &&
      sim_->rng(stream_).uniform01() < cfg_.drop_probability) {
    ++dropped_;
    return;
  }
  const bool duplicate =
      cfg_.duplicate_probability > 0.0 &&
      sim_->rng(stream_).uniform01() < cfg_.duplicate_probability;
  if (duplicate) {
    ++duplicated_;
    schedule_delivery(deliver);
  }
  schedule_delivery(std::move(deliver));
}

void FaultChannel::encode_state(StateEncoder& enc) const {
  enc.put_string(stream_);
  enc.put_time(last_scheduled_);
  enc.put_u64(offered_);
  enc.put_u64(delivered_);
  enc.put_u64(dropped_);
  enc.put_u64(duplicated_);
  enc.put_u64(reordered_);
}

}  // namespace pythia::sim
