// Simulation context: clock + event queue + seeded RNG streams.
//
// Every model component receives a `Simulation&` and interacts with simulated
// time exclusively through it. Components requiring randomness ask for a
// named stream so that adding a new consumer never perturbs existing streams
// (which would silently change every experiment).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace pythia::sim {

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1) : seed_(seed) {}

  [[nodiscard]] util::SimTime now() const { return queue_.now(); }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  EventHandle at(util::SimTime t, EventFn fn) {
    return queue_.schedule(t, std::move(fn));
  }
  EventHandle after(util::Duration d, EventFn fn) {
    return queue_.schedule_after(d, std::move(fn));
  }

  /// Runs the simulation to completion (or `max_events`).
  std::size_t run(std::size_t max_events = SIZE_MAX) {
    return queue_.run_all(max_events);
  }
  std::size_t run_until(util::SimTime t) { return queue_.run_until(t); }

  [[nodiscard]] EventQueue& queue() { return queue_; }
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

  /// Returns a stable per-name RNG stream derived from the root seed.
  util::Xoshiro256& rng(const std::string& stream_name);

  // --- snapshot support (see sim/snapshot.hpp) ---

  /// Names of every RNG stream materialized so far, sorted — the canonical
  /// order snapshots serialize lanes in.
  [[nodiscard]] std::vector<std::string> rng_stream_names() const;
  /// Stream by name without materializing it; nullptr when never requested.
  [[nodiscard]] const util::Xoshiro256* find_rng(
      const std::string& stream_name) const;

  /// Forwards to EventQueue::install_abort_check (cooperative run timeout).
  void install_abort_check(std::function<bool()> should_abort) {
    queue_.install_abort_check(std::move(should_abort));
  }

 private:
  std::uint64_t seed_;
  EventQueue queue_;
  std::unordered_map<std::string, std::unique_ptr<util::Xoshiro256>> streams_;
};

}  // namespace pythia::sim
