#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace pythia::sim {

void EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (state_->live != nullptr) {
    assert(*state_->live > 0);
    --*state_->live;
  }
}

bool EventHandle::cancelled() const { return state_ && state_->cancelled; }

EventHandle EventQueue::schedule(util::SimTime at, EventFn fn) {
  assert(at >= now_ && "cannot schedule into the past");
  auto state = std::make_shared<EventHandle::State>();
  state->live = &live_;
  heap_.push(Entry{at, next_seq_++, std::move(fn), state});
  ++live_;
  return EventHandle{std::move(state)};
}

bool EventQueue::run_one() {
  while (!heap_.empty()) {
    // priority_queue::top() is const; the Entry must be moved out via a
    // const_cast-free copy of the cheap fields and a move of the callable.
    Entry entry{heap_.top().at, heap_.top().seq,
                std::move(const_cast<Entry&>(heap_.top()).fn),
                heap_.top().state};
    heap_.pop();
    if (entry.state->cancelled) continue;  // live_ already decremented
    entry.state->fired = true;
    --live_;
    assert(entry.at >= now_);
    now_ = entry.at;
    ++fired_;
    entry.fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::run_all(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && run_one()) ++n;
  return n;
}

std::size_t EventQueue::run_until(util::SimTime until) {
  std::size_t n = 0;
  while (!heap_.empty()) {
    // Skim cancelled entries so top() reflects the next real event.
    while (!heap_.empty() && heap_.top().state->cancelled) heap_.pop();
    if (heap_.empty() || heap_.top().at > until) break;
    if (run_one()) ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

}  // namespace pythia::sim
