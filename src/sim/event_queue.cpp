#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace pythia::sim {

void EventHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (state_->live != nullptr) {
    assert(*state_->live > 0);
    --*state_->live;
  }
  if (state_->cancelled_in_heap != nullptr) {
    ++*state_->cancelled_in_heap;
  }
}

bool EventHandle::cancelled() const { return state_ && state_->cancelled; }

EventHandle EventQueue::schedule(util::SimTime at, EventFn fn) {
  assert(at >= now_ && "cannot schedule into the past");
  auto state = std::make_shared<EventHandle::State>();
  state->live = &live_;
  state->cancelled_in_heap = &cancelled_in_heap_;
  heap_.push_back(Entry{at, next_seq_++, std::move(fn), state});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  // Cancel itself is O(1) and has no access to the heap, so garbage is
  // collected at the next schedule/pop touch point.
  maybe_compact();
  return EventHandle{std::move(state)};
}

bool EventQueue::run_one() {
  for (;;) {
    skim_cancelled();
    if (heap_.empty()) {
      // Drain is a cohort boundary: give listeners a chance to flush
      // deferred work (which may schedule new events), then look again.
      if (cohort_dirty_) {
        notify_cohort_end();
        continue;
      }
      return false;
    }
    if (cohort_dirty_ && heap_.front().at > now_) {
      // About to advance past the current instant — close the cohort first.
      // A flush may schedule an event at or before the old heap top, so
      // re-examine the heap rather than running blindly.
      notify_cohort_end();
      continue;
    }
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    entry.state->fired = true;
    --live_;
    assert(entry.at >= now_);
    now_ = entry.at;
    ++fired_;
    if (abort_check_ && fired_ % kAbortCheckStride == 0 && abort_check_()) {
      throw AbortedError(now_, fired_);
    }
    entry.fn();
    return true;
  }
}

std::size_t EventQueue::run_all(std::size_t limit) {
  std::size_t n = 0;
  while (n < limit && run_one()) ++n;
  return n;
}

std::size_t EventQueue::run_until(util::SimTime until) {
  std::size_t n = 0;
  for (;;) {
    skim_cancelled();
    if (!heap_.empty() && heap_.front().at <= until) {
      if (run_one()) ++n;
      continue;
    }
    // Parking (or draining) is a cohort boundary; a flush may schedule
    // events inside the window, so loop instead of breaking outright.
    if (cohort_dirty_) {
      notify_cohort_end();
      continue;
    }
    break;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::vector<EventQueue::PendingEventInfo> EventQueue::pending_events() const {
  std::vector<PendingEventInfo> out;
  out.reserve(live_);
  for (const auto& entry : heap_) {
    if (entry.state->cancelled) continue;
    out.push_back({entry.at, entry.seq});
  }
  std::sort(out.begin(), out.end(),
            [](const PendingEventInfo& a, const PendingEventInfo& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.seq < b.seq;
            });
  return out;
}

void EventQueue::advance_now(util::SimTime to) {
  assert(to >= now_ && "cannot rewind the clock");
  assert((heap_.empty() || pending_events().empty() ||
          pending_events().front().at >= to) &&
         "cannot idle-advance past a live event");
  now_ = to;
}

std::size_t EventQueue::add_cohort_listener(CohortListener fn) {
  const std::size_t token = next_cohort_token_++;
  cohort_listeners_.emplace_back(token, std::move(fn));
  return token;
}

void EventQueue::remove_cohort_listener(std::size_t token) {
  std::erase_if(cohort_listeners_,
                [token](const auto& p) { return p.first == token; });
}

void EventQueue::skim_cancelled() {
  while (!heap_.empty() && heap_.front().state->cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    assert(cancelled_in_heap_ > 0);
    --cancelled_in_heap_;
  }
}

void EventQueue::notify_cohort_end() {
  // Clear first: a listener that defers new work mid-flush re-arms the flag
  // and earns another boundary pass.
  cohort_dirty_ = false;
  for (auto& [token, fn] : cohort_listeners_) fn();
}

void EventQueue::maybe_compact() {
  if (cancelled_in_heap_ < kCompactFloor ||
      cancelled_in_heap_ * 2 <= heap_.size()) {
    return;
  }
  std::erase_if(heap_, [](const Entry& e) { return e.state->cancelled; });
  // (time, seq) is a total order over entries, so rebuilding the heap cannot
  // change the order in which the remaining events fire.
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_in_heap_ = 0;
}

}  // namespace pythia::sim
