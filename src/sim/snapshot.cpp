#include "sim/snapshot.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <string_view>

#include "sim/simulation.hpp"
#include "util/random.hpp"

namespace pythia::sim {

namespace {

constexpr std::uint8_t kMagic[8] = {'P', 'Y', 'S', 'N', 'A', 'P', '0', '\n'};

std::uint64_t fnv1a(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex_u64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

// --- StateEncoder ---

void StateEncoder::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void StateEncoder::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void StateEncoder::put_f64(double v) {
  put_u64(std::bit_cast<std::uint64_t>(v));
}

void StateEncoder::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

// --- StateDecoder ---

void StateDecoder::need(std::size_t n) const {
  if (bytes_->size() - pos_ < n) {
    throw SnapshotError("snapshot section truncated: need " +
                        std::to_string(n) + " bytes, have " +
                        std::to_string(bytes_->size() - pos_));
  }
}

std::uint8_t StateDecoder::get_u8() {
  need(1);
  return (*bytes_)[pos_++];
}

std::uint32_t StateDecoder::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>((*bytes_)[pos_++]) << (8 * i);
  }
  return v;
}

std::uint64_t StateDecoder::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>((*bytes_)[pos_++]) << (8 * i);
  }
  return v;
}

double StateDecoder::get_f64() {
  return std::bit_cast<double>(get_u64());
}

std::string StateDecoder::get_string() {
  const std::uint32_t len = get_u32();
  need(len);
  std::string s(reinterpret_cast<const char*>(bytes_->data()) + pos_, len);
  pos_ += len;
  return s;
}

// --- Snapshot ---

const SnapshotSection* Snapshot::section(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<std::uint8_t> Snapshot::serialize() const {
  StateEncoder payload;
  payload.put_u64(root_seed);
  payload.put_u64(config_fingerprint);
  payload.put_u64(cursor_events);
  payload.put_time(cursor_time);
  payload.put_string(label);
  payload.put_u32(static_cast<std::uint32_t>(sections_.size()));
  for (const auto& s : sections_) {
    payload.put_string(s.name);
    payload.put_u32(static_cast<std::uint32_t>(s.bytes.size()));
  }
  std::vector<std::uint8_t> body = payload.take();
  for (const auto& s : sections_) {
    body.insert(body.end(), s.bytes.begin(), s.bytes.end());
  }

  std::vector<std::uint8_t> out(kMagic, kMagic + sizeof(kMagic));
  StateEncoder header;
  header.put_u32(kFormatVersion);
  header.put_u64(body.size());
  const auto& hb = header.bytes();
  out.insert(out.end(), hb.begin(), hb.end());
  out.insert(out.end(), body.begin(), body.end());
  StateEncoder checksum;
  checksum.put_u64(fnv1a(body.data(), body.size()));
  const auto& cb = checksum.bytes();
  out.insert(out.end(), cb.begin(), cb.end());
  return out;
}

// pythia-lint: allow(stream-symmetry) deliberately asymmetric framing: the
// magic is written via the byte vector but verified here with get_u8, and
// the checksum is read out-of-band after the body; sections themselves are
// length-framed, not stream-mirrored.
Snapshot Snapshot::deserialize(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < sizeof(kMagic) + 12 + 8 ||
      !std::equal(kMagic, kMagic + sizeof(kMagic), bytes.begin())) {
    throw SnapshotError("not a pythia snapshot (bad magic)");
  }
  StateDecoder head(bytes);
  for (std::size_t i = 0; i < sizeof(kMagic); ++i) (void)head.get_u8();
  const std::uint32_t version = head.get_u32();
  if (version != kFormatVersion) {
    throw SnapshotError("snapshot format version " + std::to_string(version) +
                        " unsupported (expected " +
                        std::to_string(kFormatVersion) + ")");
  }
  const std::uint64_t body_len = head.get_u64();
  const std::size_t body_off = sizeof(kMagic) + 12;
  if (bytes.size() != body_off + body_len + 8) {
    throw SnapshotError("snapshot length mismatch");
  }
  const std::uint64_t want = fnv1a(bytes.data() + body_off, body_len);
  StateDecoder tail(bytes);
  for (std::size_t i = 0; i < body_off + body_len; ++i) (void)tail.get_u8();
  const std::uint64_t got = tail.get_u64();
  if (want != got) {
    throw SnapshotError("snapshot checksum mismatch: stored " + hex_u64(got) +
                        ", computed " + hex_u64(want));
  }

  std::vector<std::uint8_t> body(bytes.begin() + static_cast<std::ptrdiff_t>(body_off),
                                 bytes.begin() + static_cast<std::ptrdiff_t>(body_off + body_len));
  StateDecoder dec(body);
  Snapshot snap;
  snap.root_seed = dec.get_u64();
  snap.config_fingerprint = dec.get_u64();
  snap.cursor_events = dec.get_u64();
  snap.cursor_time = dec.get_time();
  snap.label = dec.get_string();
  const std::uint32_t n_sections = dec.get_u32();
  std::vector<std::pair<std::string, std::uint32_t>> dir;
  dir.reserve(n_sections);
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    std::string name = dec.get_string();
    const std::uint32_t len = dec.get_u32();
    dir.emplace_back(std::move(name), len);
  }
  for (auto& [name, len] : dir) {
    std::vector<std::uint8_t> section_bytes;
    section_bytes.reserve(len);
    for (std::uint32_t i = 0; i < len; ++i) section_bytes.push_back(dec.get_u8());
    snap.add_section(std::move(name), std::move(section_bytes));
  }
  if (!dec.exhausted()) {
    throw SnapshotError("snapshot has trailing bytes after last section");
  }
  return snap;
}

void Snapshot::save(const std::string& path) const {
  const auto bytes = serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    throw SnapshotError("cannot open " + path + " for writing");
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) throw SnapshotError("short write to " + path);
}

Snapshot Snapshot::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw SnapshotError("cannot open " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return deserialize(bytes);
}

std::uint64_t Snapshot::state_checksum() const {
  const auto bytes = serialize();
  return fnv1a(bytes.data(), bytes.size());
}

namespace {

std::string describe_divergence_impl(const Snapshot& a, const Snapshot& b,
                                     bool behavioral_only) {
  if (a.cursor_events != b.cursor_events) {
    return "cursor: " + std::to_string(a.cursor_events) + " vs " +
           std::to_string(b.cursor_events) + " events fired";
  }
  if (a.cursor_time != b.cursor_time) {
    return "clock: t=" + std::to_string(a.cursor_time.ns()) + "ns vs t=" +
           std::to_string(b.cursor_time.ns()) + "ns";
  }
  if (a.sections().size() != b.sections().size()) {
    return "section count: " + std::to_string(a.sections().size()) + " vs " +
           std::to_string(b.sections().size());
  }
  for (std::size_t i = 0; i < a.sections().size(); ++i) {
    const auto& sa = a.sections()[i];
    const auto& sb = b.sections()[i];
    if (sa.name != sb.name) {
      return "section " + std::to_string(i) + " name: '" + sa.name +
             "' vs '" + sb.name + "'";
    }
    if (behavioral_only && Snapshot::is_observability_section(sa.name)) {
      continue;
    }
    const std::size_t n = std::min(sa.bytes.size(), sb.bytes.size());
    for (std::size_t off = 0; off < n; ++off) {
      if (sa.bytes[off] != sb.bytes[off]) {
        return "section '" + sa.name + "': first differing byte at offset " +
               std::to_string(off) + " (" +
               std::to_string(static_cast<int>(sa.bytes[off])) + " vs " +
               std::to_string(static_cast<int>(sb.bytes[off])) + ")";
      }
    }
    if (sa.bytes.size() != sb.bytes.size()) {
      return "section '" + sa.name + "': length " +
             std::to_string(sa.bytes.size()) + " vs " +
             std::to_string(sb.bytes.size());
    }
  }
  return {};
}

}  // namespace

std::string Snapshot::describe_divergence(const Snapshot& a,
                                          const Snapshot& b) {
  return describe_divergence_impl(a, b, /*behavioral_only=*/false);
}

bool Snapshot::is_observability_section(const std::string& name) {
  constexpr std::string_view kSuffix = ".counters";
  return name.size() >= kSuffix.size() &&
         name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) == 0;
}

std::string Snapshot::describe_behavior_divergence(const Snapshot& a,
                                                   const Snapshot& b) {
  return describe_divergence_impl(a, b, /*behavioral_only=*/true);
}

std::uint64_t Snapshot::behavior_checksum() const {
  StateEncoder enc;
  enc.put_u64(cursor_events);
  enc.put_time(cursor_time);
  for (const auto& section : sections_) {
    if (is_observability_section(section.name)) continue;
    enc.put_string(section.name);
    enc.put_u64(section.bytes.size());
    for (std::uint8_t b : section.bytes) enc.put_u8(b);
  }
  return fnv1a(enc.bytes().data(), enc.bytes().size());
}

// --- core sim capture ---

void encode_event_queue_state(const EventQueue& queue, StateEncoder& enc) {
  enc.put_time(queue.now());
  enc.put_u64(queue.events_fired());
  enc.put_u64(queue.next_sequence());
  enc.put_u64(queue.pending());
  enc.put_u64(queue.cancelled_in_heap());
  const auto pending = queue.pending_events();
  for (const auto& e : pending) {
    enc.put_time(e.at);
    enc.put_u64(e.seq);
  }
}

void encode_rng_state(const Simulation& sim, StateEncoder& enc) {
  const auto names = sim.rng_stream_names();  // sorted
  enc.put_u64(sim.seed());
  enc.put_u32(static_cast<std::uint32_t>(names.size()));
  for (const auto& name : names) {
    enc.put_string(name);
    const util::Xoshiro256* rng = sim.find_rng(name);
    for (std::uint64_t word : rng->state()) enc.put_u64(word);
  }
}

}  // namespace pythia::sim
