#include "sim/simulation.hpp"

#include <algorithm>

namespace pythia::sim {

std::vector<std::string> Simulation::rng_stream_names() const {
  std::vector<std::string> names;
  names.reserve(streams_.size());
  // pythia-lint: allow(unordered-iter) key collection only; sorted below
  for (const auto& [name, rng] : streams_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

const util::Xoshiro256* Simulation::find_rng(
    const std::string& stream_name) const {
  const auto it = streams_.find(stream_name);
  return it == streams_.end() ? nullptr : it->second.get();
}

util::Xoshiro256& Simulation::rng(const std::string& stream_name) {
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    const std::uint64_t tag = util::hash_bytes(stream_name.data(), stream_name.size());
    it = streams_
             .emplace(stream_name, std::make_unique<util::Xoshiro256>(
                                       util::derive_seed(seed_, tag)))
             .first;
  }
  return *it->second;
}

}  // namespace pythia::sim
