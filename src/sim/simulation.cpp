#include "sim/simulation.hpp"

namespace pythia::sim {

util::Xoshiro256& Simulation::rng(const std::string& stream_name) {
  auto it = streams_.find(stream_name);
  if (it == streams_.end()) {
    const std::uint64_t tag = util::hash_bytes(stream_name.data(), stream_name.size());
    it = streams_
             .emplace(stream_name, std::make_unique<util::Xoshiro256>(
                                       util::derive_seed(seed_, tag)))
             .first;
  }
  return *it->second;
}

}  // namespace pythia::sim
