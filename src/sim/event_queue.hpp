// Discrete-event queue.
//
// Events are ordered by (time, insertion sequence) so that same-time events
// fire in deterministic FIFO order — a hard requirement for reproducible
// experiments. Cancellation is lazy: a cancelled event stays in the heap but
// is skipped on pop, which keeps cancel O(1) (the fluid network model cancels
// its pending flow-completion event on every recompute). To bound memory
// under that churn, the heap is compacted — cancelled entries erased and the
// heap rebuilt — once they outnumber live ones (and exceed a small floor);
// (time, seq) is a total order, so rebuilding cannot perturb firing order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "util/time.hpp"

namespace pythia::sim {

using EventFn = std::function<void()>;

/// Thrown out of the event loop when an installed abort check trips (the
/// sweep executor's cooperative wall-clock timeout). Carries the simulation
/// position so the failure is attributable and reproducible.
class AbortedError : public std::runtime_error {
 public:
  AbortedError(util::SimTime at_, std::uint64_t events_fired_)
      : std::runtime_error("simulation run aborted at t=" +
                           std::to_string(at_.ns()) + "ns after " +
                           std::to_string(events_fired_) + " events"),
        at(at_),
        events_fired(events_fired_) {}

  util::SimTime at;
  std::uint64_t events_fired;
};

/// Handle used to cancel a scheduled event. Default-constructed handles are
/// inert. Copies share the same cancellation flag.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancels the event if it has not fired yet; idempotent.
  void cancel();
  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool cancelled() const;

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
    std::size_t* live = nullptr;       // queue's live-event counter
    std::size_t* cancelled_in_heap = nullptr;  // queue's garbage counter
  };
  explicit EventHandle(std::shared_ptr<State> state)
      : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `at`. `at` must be >= now() (asserted).
  EventHandle schedule(util::SimTime at, EventFn fn);

  /// Convenience: schedule `fn` after a relative delay.
  EventHandle schedule_after(util::Duration delay, EventFn fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  /// Pops and runs the earliest non-cancelled event; advances now() to its
  /// timestamp. Returns false when the queue is empty.
  bool run_one();

  /// Runs events until the queue drains or `limit` events have fired.
  /// Returns the number of events fired.
  std::size_t run_all(std::size_t limit = SIZE_MAX);

  /// Runs events with timestamp <= `until` (advances now() to `until` even if
  /// the queue drains earlier). Returns the number of events fired.
  std::size_t run_until(util::SimTime until);

  [[nodiscard]] util::SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Number of scheduled, not-yet-fired, not-cancelled events.
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  /// Physical heap size including not-yet-compacted cancelled entries; the
  /// compaction test asserts this stays bounded under cancel churn.
  [[nodiscard]] std::size_t heap_size() const { return heap_.size(); }

  // --- snapshot support (see sim/snapshot.hpp) ---

  /// Timestamp + insertion sequence of one live (scheduled, uncancelled,
  /// unfired) entry; the closure itself is not marshalable.
  struct PendingEventInfo {
    util::SimTime at;
    std::uint64_t seq;
  };
  /// The canonical logical content of the queue: live entries sorted by
  /// (time, seq). Deliberately independent of the physical heap layout,
  /// which varies with compaction history even between logically identical
  /// queues.
  [[nodiscard]] std::vector<PendingEventInfo> pending_events() const;
  /// Next insertion sequence number (counts cancelled entries too — two
  /// runs only replay identically if their schedule() call sequences match).
  [[nodiscard]] std::uint64_t next_sequence() const { return next_seq_; }
  /// Cancelled entries still parked in the heap (lazy-cancel garbage).
  [[nodiscard]] std::size_t cancelled_in_heap() const {
    return cancelled_in_heap_;
  }
  /// Advances the clock without firing anything; `to` must be >= now() and
  /// <= the next live event. Restore uses this to reproduce a capture clock
  /// that run_until() parked *between* events — replaying to the event
  /// cursor alone leaves now() at the last fired event's timestamp, which
  /// would diverge from the captured image (see docs/checkpoint.md).
  void advance_now(util::SimTime to);

  /// Installs a cooperative abort check, polled every kAbortCheckStride
  /// fired events; when it returns true the loop throws AbortedError. The
  /// check must not touch simulation state — the sweep executor installs a
  /// wall-clock deadline, which only ever decides whether a run *dies*,
  /// never what a surviving run computes.
  void install_abort_check(std::function<bool()> should_abort) {
    abort_check_ = std::move(should_abort);
  }

  // --- cohort boundaries (batched event coalescing) ----------------------
  //
  // A *cohort* is a maximal run of events firing at the same simulated
  // instant. A subsystem that coalesces work across a cohort (the fabric's
  // batched rate recompute) registers a listener and calls
  // mark_cohort_activity() whenever it defers work; the queue then invokes
  // every listener, in registration order, at the cohort boundary — before
  // the clock advances past the current instant, when the queue drains, and
  // before run_until() parks the clock. Listeners may schedule new events
  // (at now() or later); the loop re-examines the heap after notifying, so
  // a completion event scheduled by a flush still fires at the right time.
  // Notification is level-triggered and idempotent: it only happens while
  // the activity flag is set, and notifying clears the flag, so an inert
  // listener costs one flag test per boundary and nothing else. Listeners
  // are NOT events: they consume no sequence numbers and leave the
  // (time, seq) skeleton — and therefore snapshots and golden traces —
  // untouched.

  using CohortListener = std::function<void()>;

  /// Registers `fn`; returns a token for remove_cohort_listener.
  std::size_t add_cohort_listener(CohortListener fn);
  /// Removes a listener; idempotent, preserves the order of the others.
  void remove_cohort_listener(std::size_t token);
  /// Flags deferred work; the next cohort boundary will notify listeners.
  void mark_cohort_activity() { cohort_dirty_ = true; }
  [[nodiscard]] bool cohort_activity_pending() const { return cohort_dirty_; }

 private:
  struct Entry {
    util::SimTime at;
    std::uint64_t seq;
    EventFn fn;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Don't bother compacting tiny heaps.
  static constexpr std::size_t kCompactFloor = 64;
  /// Abort-check polling stride (events between wall-clock deadline polls).
  static constexpr std::uint64_t kAbortCheckStride = 1024;

  void maybe_compact();
  /// Pops cancelled entries off the heap top so front() is the next real
  /// event.
  void skim_cancelled();
  void notify_cohort_end();

  // Raw vector + std::push_heap/pop_heap (rather than std::priority_queue)
  // so compaction can erase_if + make_heap in place.
  std::vector<Entry> heap_;
  util::SimTime now_ = util::SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t live_ = 0;
  std::size_t cancelled_in_heap_ = 0;
  std::function<bool()> abort_check_;
  std::vector<std::pair<std::size_t, CohortListener>> cohort_listeners_;
  std::size_t next_cohort_token_ = 0;
  bool cohort_dirty_ = false;
};

}  // namespace pythia::sim
