// Deterministic simulation snapshots: versioned, checksummed binary
// serialization of the full simulation state.
//
// Events are type-erased closures (`sim::EventFn`), so a snapshot cannot
// marshal the event heap's function objects directly. Instead a snapshot
// couples two things the determinism contract (golden traces + pythia-lint,
// PRs 3/5) makes sound:
//
//  * a **replay cursor** — the root seed, a config fingerprint, and the
//    exact number of events fired — from which a restore rebuilds the
//    component graph and re-runs the deterministic event loop to the same
//    position; and
//  * a **full state image** — sim clock, event-queue skeleton (live
//    (time, seq) pairs plus lazy-cancel/compaction counters), every RNG
//    lane's raw xoshiro state, and each subsystem's logical state (fabric
//    flows/links/counters, routing tables, controller rule/retry/table
//    state, collector/watchdog state, engine progress) — against which the
//    restored run is *verified byte-for-byte*. A restore that does not land
//    on the identical image fails loudly with the first diverging section,
//    which is exactly the signal the divergence-bisection tool binary
//    searches on.
//
// The binary format is little-endian fixed-width with a magic, a format
// version, and an FNV-1a checksum over the payload; see docs/checkpoint.md
// for the layout and versioning rules.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace pythia::sim {

class Simulation;
class EventQueue;

/// Error raised by snapshot parsing/decoding (bad magic, version mismatch,
/// checksum failure, truncated section) and by restore identity mismatches.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Appends fixed-width little-endian values to a byte buffer. Every value a
/// subsystem's `encode_state` writes becomes part of the verified state
/// image, so encode only *logical* state (never pointers, never scratch
/// whose layout depends on allocation history).
class StateEncoder {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
  /// Doubles are stored as their IEEE-754 bit pattern — bit-exact, no
  /// formatting round-trip.
  void put_f64(double v);
  void put_time(util::SimTime t) { put_i64(t.ns()); }
  void put_duration(util::Duration d) { put_i64(d.ns()); }
  /// Length-prefixed UTF-8 string.
  void put_string(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked mirror of StateEncoder; throws SnapshotError on underrun.
class StateDecoder {
 public:
  explicit StateDecoder(const std::vector<std::uint8_t>& bytes)
      : bytes_(&bytes) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }
  [[nodiscard]] double get_f64();
  [[nodiscard]] util::SimTime get_time() { return util::SimTime{get_i64()}; }
  [[nodiscard]] util::Duration get_duration() {
    return util::Duration{get_i64()};
  }
  [[nodiscard]] std::string get_string();

  [[nodiscard]] std::size_t remaining() const {
    return bytes_->size() - pos_;
  }
  [[nodiscard]] bool exhausted() const { return remaining() == 0; }

 private:
  void need(std::size_t n) const;

  const std::vector<std::uint8_t>* bytes_;
  std::size_t pos_ = 0;
};

/// One named state section (e.g. "fabric", "sim.rng"). Capture emits the
/// sections in a fixed order; verification compares them pairwise.
struct SnapshotSection {
  std::string name;
  std::vector<std::uint8_t> bytes;
};

class Snapshot {
 public:
  // v2: routing section switched from a pool-id dump to slot-ordered
  // per-pair link chains, and controller/pythia sections encode rule paths
  // as chains — interning order became query-dependent with the lazy
  // routing graph (see docs/checkpoint.md).
  // v3: sharded intent pipeline — collector section gained pipeline mode,
  // per-intent windowed batch counts, shard-queue content, and admission/
  // coalescing counters; controller rules carry intent weights plus the
  // intent-weighted outcome counters and open-batch state (see
  // docs/architecture.md pipeline section).
  static constexpr std::uint32_t kFormatVersion = 3;

  // --- identity + cursor (set by the capturing layer) ---
  std::uint64_t root_seed = 0;
  /// Hash of the scenario config + workload the capture ran; restore refuses
  /// to replay against a different universe.
  std::uint64_t config_fingerprint = 0;
  /// Events fired when the snapshot was taken — the replay cursor.
  std::uint64_t cursor_events = 0;
  /// Sim clock at capture. May sit *between* events (run_until() advances
  /// the clock past the last fired event); restore reproduces this with
  /// EventQueue::advance_now after replaying to `cursor_events`.
  util::SimTime cursor_time = util::SimTime::zero();
  /// Free-form capture label ("mid-shuffle", "warm"); not part of identity.
  std::string label;

  void add_section(std::string name, std::vector<std::uint8_t> bytes) {
    sections_.push_back({std::move(name), std::move(bytes)});
  }
  [[nodiscard]] const std::vector<SnapshotSection>& sections() const {
    return sections_;
  }
  /// Section by name; nullptr when absent.
  [[nodiscard]] const SnapshotSection* section(const std::string& name) const;

  /// Serializes to the on-disk format: magic, version, header, sections,
  /// all covered by a trailing FNV-1a checksum.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  /// Parses and validates (magic, version, checksum). Throws SnapshotError.
  [[nodiscard]] static Snapshot deserialize(
      const std::vector<std::uint8_t>& bytes);

  void save(const std::string& path) const;
  [[nodiscard]] static Snapshot load(const std::string& path);

  /// FNV-1a over the serialized payload — a single u64 that distinguishes
  /// any two non-identical states (used by the bisection tool's binary
  /// search, which compares whole states cheaply).
  [[nodiscard]] std::uint64_t state_checksum() const;

  /// Empty string when `a` and `b` carry byte-identical cursors and
  /// sections; otherwise a human-readable description of the first
  /// divergence ("section 'fabric': first differing byte at offset 120").
  [[nodiscard]] static std::string describe_divergence(const Snapshot& a,
                                                       const Snapshot& b);

  /// Observability sections (names ending in ".counters") record how much
  /// work a strategy did, not what it computed; contracted-identical arms
  /// (e.g. incremental vs. full-recompute rate engines) agree on every
  /// behavioral section while legitimately differing here.
  [[nodiscard]] static bool is_observability_section(const std::string& name);

  /// describe_divergence restricted to behavioral sections — the cross-arm
  /// comparator the divergence-bisection tool uses. Same-arm restore
  /// verification uses describe_divergence (everything must match).
  [[nodiscard]] static std::string describe_behavior_divergence(
      const Snapshot& a, const Snapshot& b);

  /// FNV-1a over the cursor and behavioral sections only — a cheap
  /// whole-state comparator for the bisection tool's binary search.
  [[nodiscard]] std::uint64_t behavior_checksum() const;

 private:
  std::vector<SnapshotSection> sections_;
};

/// Encodes the event queue's logical + compaction state: clock, sequence
/// counter, fired/live/garbage counters, and the canonical sorted
/// (time, seq) skeleton of live entries (physical heap layout is excluded —
/// it depends on compaction history, not on logical state).
void encode_event_queue_state(const EventQueue& queue, StateEncoder& enc);

/// Encodes every materialized RNG lane (sorted by stream name) with its raw
/// xoshiro256** state words. A replayed run must land every lane on the
/// exact same words — the most sensitive divergence detector in the image.
void encode_rng_state(const Simulation& sim, StateEncoder& enc);

}  // namespace pythia::sim
