// Lossy control-plane message channel.
//
// The data plane has had a fault model since the resilience work (link and
// switch death, task churn); this channel gives the *control* plane one.
// Every message handed to `send` can be dropped, delayed (fixed base plus a
// uniform or exponential jitter, which also reorders), or duplicated, all
// drawn from a named seed-derived RNG stream so runs stay bit-reproducible.
//
// A channel whose config is all-zero is *transparent*: the message is
// delivered synchronously, no RNG stream is consumed, and no events are
// scheduled — a zero-fault experiment produces exactly the event sequence it
// produced before this layer existed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulation.hpp"
#include "util/time.hpp"

namespace pythia::sim {

class StateEncoder;

struct FaultChannelConfig {
  /// Per-message loss probability.
  double drop_probability = 0.0;
  /// Per-message duplication probability (the copy takes its own delay).
  double duplicate_probability = 0.0;
  /// Fixed transit delay added to every surviving message.
  util::Duration base_delay = util::Duration::zero();
  /// Random extra delay on top of `base_delay`; messages with unequal jitter
  /// draws can overtake each other (reordering).
  util::Duration jitter = util::Duration::zero();
  enum class Jitter { kUniform, kExponential };
  /// kUniform draws from [0, jitter); kExponential draws with mean `jitter`
  /// (heavy tail — occasional very stale deliveries).
  Jitter jitter_kind = Jitter::kUniform;

  /// True when the channel cannot alter any message.
  [[nodiscard]] bool transparent() const {
    return drop_probability <= 0.0 && duplicate_probability <= 0.0 &&
           base_delay == util::Duration::zero() &&
           jitter == util::Duration::zero();
  }
};

class FaultChannel {
 public:
  /// `stream_name` names the RNG stream (derived from the simulation's root
  /// seed), so two channels with distinct names fault independently.
  FaultChannel(Simulation& sim, std::string stream_name,
               FaultChannelConfig cfg = {});

  /// Offers one message. `deliver` runs zero times (dropped), once, or twice
  /// (duplicated), each at send-time + base_delay + jitter. A transparent
  /// channel invokes it synchronously.
  void send(std::function<void()> deliver);

  [[nodiscard]] const FaultChannelConfig& config() const { return cfg_; }
  [[nodiscard]] bool transparent() const { return cfg_.transparent(); }

  // --- accounting ---
  [[nodiscard]] std::uint64_t messages_offered() const { return offered_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t messages_duplicated() const {
    return duplicated_;
  }
  /// Deliveries scheduled to land before an earlier send's delivery.
  [[nodiscard]] std::uint64_t reorderings() const { return reordered_; }

  /// Latest delivery instant scheduled so far (reorder detection baseline).
  /// Surfaced because it is channel state a snapshot must cover: two
  /// channels with equal counters but different high-water marks classify
  /// the *next* delivery differently.
  [[nodiscard]] util::SimTime last_scheduled() const { return last_scheduled_; }

  /// Serializes the channel's logical state (config knobs are identity, not
  /// state, and are covered by the snapshot's config fingerprint instead).
  void encode_state(StateEncoder& enc) const;

 private:
  [[nodiscard]] util::Duration sample_delay();
  void schedule_delivery(std::function<void()> deliver);

  // pythia-lint: allow(snapshot-skip, group) sim_ is restore-factory wiring
  // and cfg_ is covered by the scenario fingerprint (stream_, the RNG lane
  // name, IS encoded).
  Simulation* sim_;
  std::string stream_;
  FaultChannelConfig cfg_;

  util::SimTime last_scheduled_ = util::SimTime::zero();
  std::uint64_t offered_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace pythia::sim
