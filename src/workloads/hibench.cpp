#include "workloads/hibench.hpp"

namespace pythia::workloads {

using util::Bytes;
using util::BitsPerSec;
using util::Duration;

hadoop::JobSpec sort_job(Bytes input, std::size_t reducers,
                         double zipf_skew) {
  hadoop::JobSpec spec;
  spec.name = "sort";
  spec.input = input;
  spec.block = Bytes{256 * 1000 * 1000};
  spec.num_reducers = reducers;
  spec.map_output_ratio = 1.0;  // identity transform: everything shuffles
  spec.skew = hadoop::PartitionSkew::zipf(zipf_skew);
  spec.map_overhead = Duration::millis(800);
  spec.map_rate = BitsPerSec{8e8};     // 100 MB/s of input per map task
  spec.reduce_overhead = Duration::millis(1200);
  spec.reduce_rate = BitsPerSec{9.6e8};  // 120 MB/s of merged input
  return spec;
}

hadoop::JobSpec paper_sort(std::size_t reducers) {
  return sort_job(Bytes{240LL * 1000 * 1000 * 1000}, reducers, 0.5);
}

hadoop::JobSpec nutch_indexing(std::size_t pages, std::size_t reducers,
                               Bytes bytes_per_page) {
  hadoop::JobSpec spec;
  spec.name = "nutch-indexing";
  spec.input = Bytes{static_cast<std::int64_t>(pages) * bytes_per_page.count()};
  spec.block = Bytes{64 * 1000 * 1000};
  spec.num_reducers = reducers;
  // Lucene-style inverted-index construction expands the data (postings,
  // positions, link text) before the reduce-side index merge.
  spec.map_output_ratio = 4.0;
  spec.skew = hadoop::PartitionSkew::zipf(0.4);
  // Parsing/tokenizing dominates: maps crunch input slowly, which is what
  // makes Nutch completion insensitive to extra network capacity once the
  // shuffle is well placed (paper Fig. 3).
  spec.map_overhead = Duration::millis(1500);
  spec.map_rate = BitsPerSec{4.8e6 * 8};  // ~4.8 MB/s of raw pages per task
  spec.reduce_overhead = Duration::millis(2000);
  spec.reduce_rate = BitsPerSec{4e8};  // 50 MB/s of index merge
  return spec;
}

hadoop::JobSpec paper_nutch(std::size_t reducers) {
  return nutch_indexing(5'000'000, reducers);
}

hadoop::JobSpec integer_sort_60g(std::size_t reducers) {
  auto spec = sort_job(Bytes{60LL * 1000 * 1000 * 1000}, reducers, 0.5);
  spec.name = "integer-sort-60g";
  return spec;
}

hadoop::JobSpec wordcount(Bytes input, std::size_t reducers) {
  hadoop::JobSpec spec;
  spec.name = "wordcount";
  spec.input = input;
  spec.block = Bytes{128 * 1000 * 1000};
  spec.num_reducers = reducers;
  // Map-side combining collapses most duplicates before the shuffle.
  spec.map_output_ratio = 0.25;
  spec.skew = hadoop::PartitionSkew::zipf(1.0);  // natural-language keys
  spec.map_overhead = Duration::millis(900);
  spec.map_rate = BitsPerSec{4e8};  // tokenization-bound, 50 MB/s
  spec.reduce_overhead = Duration::millis(1000);
  spec.reduce_rate = BitsPerSec{8e8};
  return spec;
}

hadoop::JobSpec terasort(Bytes input, std::size_t reducers) {
  hadoop::JobSpec spec;
  spec.name = "terasort";
  spec.input = input;
  spec.block = Bytes{256 * 1000 * 1000};
  spec.num_reducers = reducers;
  spec.map_output_ratio = 1.0;
  spec.skew = hadoop::PartitionSkew::uniform();  // sampled range partitioner
  spec.map_overhead = Duration::millis(700);
  spec.map_rate = BitsPerSec{9.6e8};
  spec.reduce_overhead = Duration::millis(1200);
  spec.reduce_rate = BitsPerSec{9.6e8};
  return spec;
}

hadoop::JobSpec pagerank_iteration(Bytes edges, std::size_t reducers) {
  hadoop::JobSpec spec;
  spec.name = "pagerank-iteration";
  spec.input = edges;
  spec.block = Bytes{128 * 1000 * 1000};
  spec.num_reducers = reducers;
  spec.map_output_ratio = 1.1;  // rank contributions along every edge
  spec.skew = hadoop::PartitionSkew::zipf(0.8);  // power-law in-degrees
  spec.map_overhead = Duration::millis(800);
  spec.map_rate = BitsPerSec{6.4e8};
  spec.reduce_overhead = Duration::millis(1200);
  spec.reduce_rate = BitsPerSec{6.4e8};
  return spec;
}

hadoop::JobSpec toy_skewed_sort() {
  hadoop::JobSpec spec;
  spec.name = "toy-sort";
  spec.input = Bytes{900 * 1000 * 1000};
  spec.num_maps_override = 3;
  spec.num_reducers = 2;
  spec.map_output_ratio = 1.0;
  // Fig. 1a: reducer-0 receives 5x the data of reducer-1.
  spec.skew = hadoop::PartitionSkew::explicit_weights({5.0, 1.0});
  spec.mapper_output_jitter = 0.02;
  spec.map_overhead = Duration::millis(800);
  spec.map_rate = BitsPerSec{8e8};
  spec.reduce_overhead = Duration::millis(1000);
  spec.reduce_rate = BitsPerSec{8e8};
  return spec;
}

}  // namespace pythia::workloads
