// HiBench-like workload specifications.
//
// The paper evaluates two network-intensive HiBench benchmarks — Sort
// (240 GB input) and Nutch indexing (5M pages, 8 GB input) — and uses a
// 60 GB integer sort for the prediction-efficacy study. These generators
// encode the traits that matter to shuffle-phase behaviour: shuffle volume
// per input byte, number/size of shuffle flows (Nutch creates many smaller
// flows than Sort, which the paper credits for its higher optimization
// headroom), key skew, and the compute-to-I/O balance.
#pragma once

#include <cstddef>

#include "hadoop/config.hpp"
#include "util/units.hpp"

namespace pythia::workloads {

/// HiBench Sort: identity map/reduce over KV records; shuffle volume equals
/// input volume. Representative of data transformation jobs.
hadoop::JobSpec sort_job(util::Bytes input, std::size_t reducers,
                         double zipf_skew = 0.5);

/// The paper's headline Sort configuration (240 GB).
hadoop::JobSpec paper_sort(std::size_t reducers = 20);

/// Nutch indexing: CPU-heavy map (document parsing), inverted-index shuffle
/// with volume expansion and many relatively small flows.
hadoop::JobSpec nutch_indexing(std::size_t pages, std::size_t reducers,
                               util::Bytes bytes_per_page = util::Bytes{1600});

/// The paper's Nutch configuration (5M pages, ~8 GB input).
hadoop::JobSpec paper_nutch(std::size_t reducers = 24);

/// The 60 GB integer sort used for the Fig. 5 prediction-efficacy study.
hadoop::JobSpec integer_sort_60g(std::size_t reducers = 10);

/// WordCount: heavy map-side reduction (combiners), low shuffle ratio,
/// strongly skewed keys (natural-language Zipf).
hadoop::JobSpec wordcount(util::Bytes input, std::size_t reducers);

/// TeraSort-like: uniform synthetic keys, balanced partitions.
hadoop::JobSpec terasort(util::Bytes input, std::size_t reducers);

/// One PageRank-style iteration: shuffle volume ≈ edge data, moderate skew
/// (power-law degree distribution).
hadoop::JobSpec pagerank_iteration(util::Bytes edges, std::size_t reducers);

/// The Fig. 1a toy job: 3 maps, 2 reducers, reducer-0 receiving 5x the
/// volume of reducer-1.
hadoop::JobSpec toy_skewed_sort();

}  // namespace pythia::workloads
