// Synthetic job-trace generation.
//
// The paper motivates Pythia with an analysis of Facebook MapReduce traces
// in which "33% of the execution time of a large number of jobs is spent at
// the shuffle phase". Real traces are proprietary; this generator produces a
// statistically similar mix: heavy-tailed input sizes (most jobs small, a
// few huge — the well-documented shape of production MR traces), a mix of
// shuffle-light and shuffle-heavy job classes, and Poisson arrivals.
#pragma once

#include <cstdint>
#include <vector>

#include "hadoop/config.hpp"
#include "util/random.hpp"
#include "util/time.hpp"

namespace pythia::workloads {

struct TraceConfig {
  std::size_t jobs = 20;
  /// Mean inter-arrival gap (Poisson process).
  util::Duration mean_interarrival = util::Duration::seconds_i(30);
  /// Input sizes are log-uniform between these bounds (heavy-tailed mix of
  /// small and large jobs).
  util::Bytes min_input = util::Bytes{500LL * 1000 * 1000};
  util::Bytes max_input = util::Bytes{64LL * 1000 * 1000 * 1000};
  /// Fraction of shuffle-heavy (sort/index-like) jobs; the rest are
  /// aggregation-style jobs with small shuffle ratios.
  double shuffle_heavy_fraction = 0.5;
  std::size_t min_reducers = 4;
  std::size_t max_reducers = 24;
};

struct TraceEntry {
  hadoop::JobSpec spec;
  util::SimTime submit_at;
};

/// Deterministic trace for a seed; entries sorted by submit time.
std::vector<TraceEntry> generate_trace(const TraceConfig& cfg,
                                       std::uint64_t seed);

}  // namespace pythia::workloads
