// Open-arrival multi-tenant intent storm.
//
// The single-job engine drives the collector from one job's lifecycle; this
// driver models the contended cluster of the ROADMAP's multi-tenant item
// (mix shaped after the MapReduce network-load analysis of arXiv 1206.2016):
// a Poisson stream of jobs from several tenants, mixing Sort-like (few large
// flows), Nutch-like (many small flows), and small ad-hoc jobs, each
// emitting reducer locations, per-(map, reducer) shuffle intents in waves,
// and a completion. Arrivals are quantized to a tick so concurrent jobs
// land intents in the same simulation instant — the event cohorts the
// sharded pipeline drains in one batch.
//
// The driver produces a deterministic, pre-sorted event list; scheduling it
// against a Collector is a separate step so benches can replay the exact
// same storm into differently configured pipelines.
#pragma once

#include <cstdint>
#include <vector>

#include "core/prediction.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pythia::core {
class Collector;
}

namespace pythia::workloads {

struct OpenArrivalConfig {
  /// Jobs in the storm.
  std::size_t jobs = 32;
  /// Mean inter-arrival gap (Poisson process). Scale this down (and jobs
  /// up) to sweep arrival rate.
  util::Duration mean_interarrival = util::Duration::millis(40);
  /// Arrival quantum: every event time is rounded down to a tick multiple,
  /// so concurrent jobs collide into shared event cohorts.
  util::Duration tick = util::Duration::millis(10);
  /// Tenants; job j belongs to tenant j % tenants with scheduling priority
  /// tenants - tenant (tenant 0 is the highest-priority one).
  std::size_t tenants = 4;

  /// Job-class mix: Sort-like (few large flows), Nutch-like (many small
  /// flows), remainder small ad-hoc jobs.
  double sort_fraction = 0.35;
  double nutch_fraction = 0.35;

  /// Per-class shape: servers hosting map tasks, map tasks per server,
  /// reducer count, and per-(map, reducer) flow volume (jittered ±50%).
  std::size_t sort_map_servers = 6;
  std::size_t sort_maps_per_server = 2;
  std::size_t sort_reducers = 4;
  util::Bytes sort_flow_bytes = util::Bytes{8LL * 1000 * 1000};
  std::size_t nutch_map_servers = 8;
  std::size_t nutch_maps_per_server = 3;
  std::size_t nutch_reducers = 6;
  util::Bytes nutch_flow_bytes = util::Bytes{1'500'000};
  std::size_t small_map_servers = 2;
  std::size_t small_maps_per_server = 1;
  std::size_t small_reducers = 2;
  util::Bytes small_flow_bytes = util::Bytes{256'000};

  /// Reducers are spread over this many consecutive servers starting at a
  /// random offset (keeps some pods hotter than others).
  std::size_t reducer_server_spread = 3;
  /// Map-output waves per job: each wave (one tick apart) emits one intent
  /// per (map task, reducer).
  std::size_t waves = 3;
};

/// One collector-facing event of the storm.
struct StormEvent {
  enum class Kind : std::uint8_t {
    kReducerLocated = 0,
    kIntent = 1,
    kJobCompleted = 2,
  };
  Kind kind = Kind::kIntent;
  util::SimTime at;
  core::ShuffleIntent intent;  // kIntent only
  std::size_t job_serial = 0;
  std::size_t reduce_index = 0;   // kReducerLocated only
  net::NodeId server;             // kReducerLocated only
};

/// Deterministic storm for a seed over `topo`'s hosts; events sorted by
/// (time, generation order) so scheduling preserves per-instant order.
[[nodiscard]] std::vector<StormEvent> generate_storm(
    const OpenArrivalConfig& cfg, const net::Topology& topo,
    std::uint64_t seed);

/// Schedules every storm event against `collector` on `sim`'s event queue.
void schedule_storm(sim::Simulation& sim, core::Collector& collector,
                    const std::vector<StormEvent>& events);

/// Number of kIntent events in the storm.
[[nodiscard]] std::size_t storm_intent_count(
    const std::vector<StormEvent>& events);

}  // namespace pythia::workloads
