#include "workloads/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "workloads/hibench.hpp"

namespace pythia::workloads {

std::vector<TraceEntry> generate_trace(const TraceConfig& cfg,
                                       std::uint64_t seed) {
  assert(cfg.jobs > 0);
  assert(cfg.max_input >= cfg.min_input);
  assert(cfg.max_reducers >= cfg.min_reducers);
  util::Xoshiro256 rng(util::derive_seed(seed, 0x7ace));

  std::vector<TraceEntry> trace;
  trace.reserve(cfg.jobs);
  double clock_s = 0.0;
  const double log_lo = std::log(cfg.min_input.as_double());
  const double log_hi = std::log(cfg.max_input.as_double());

  for (std::size_t i = 0; i < cfg.jobs; ++i) {
    clock_s += rng.exponential(cfg.mean_interarrival.seconds());

    const util::Bytes input{static_cast<std::int64_t>(
        std::exp(rng.uniform(log_lo, log_hi)))};
    const auto reducers =
        cfg.min_reducers +
        static_cast<std::size_t>(
            rng.below(cfg.max_reducers - cfg.min_reducers + 1));

    hadoop::JobSpec spec;
    if (rng.uniform01() < cfg.shuffle_heavy_fraction) {
      // Shuffle-heavy class: sort/index-style transformation.
      spec = sort_job(input, reducers, rng.uniform(0.2, 0.9));
      spec.name = "trace-sort-" + std::to_string(i);
    } else {
      // Aggregation class: combiner-reduced shuffle.
      spec = wordcount(input, reducers);
      spec.name = "trace-agg-" + std::to_string(i);
    }
    trace.push_back(TraceEntry{std::move(spec),
                               util::SimTime::from_seconds(clock_s)});
  }
  std::sort(trace.begin(), trace.end(),
            [](const TraceEntry& a, const TraceEntry& b) {
              return a.submit_at < b.submit_at;
            });
  return trace;
}

}  // namespace pythia::workloads
