#include "workloads/open_arrival.hpp"

#include <algorithm>
#include <cmath>

#include "core/collector.hpp"
#include "util/random.hpp"

namespace pythia::workloads {

namespace {

struct ClassShape {
  std::size_t map_servers;
  std::size_t maps_per_server;
  std::size_t reducers;
  util::Bytes flow_bytes;
};

ClassShape pick_class(const OpenArrivalConfig& cfg, double u) {
  if (u < cfg.sort_fraction) {
    return {cfg.sort_map_servers, cfg.sort_maps_per_server, cfg.sort_reducers,
            cfg.sort_flow_bytes};
  }
  if (u < cfg.sort_fraction + cfg.nutch_fraction) {
    return {cfg.nutch_map_servers, cfg.nutch_maps_per_server,
            cfg.nutch_reducers, cfg.nutch_flow_bytes};
  }
  return {cfg.small_map_servers, cfg.small_maps_per_server,
          cfg.small_reducers, cfg.small_flow_bytes};
}

}  // namespace

std::vector<StormEvent> generate_storm(const OpenArrivalConfig& cfg,
                                       const net::Topology& topo,
                                       std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const std::vector<net::NodeId> hosts = topo.hosts();
  std::vector<StormEvent> events;
  if (hosts.empty() || cfg.jobs == 0) return events;

  const std::int64_t tick_ns = std::max<std::int64_t>(1, cfg.tick.ns());
  const std::size_t spread = std::max<std::size_t>(1, cfg.reducer_server_spread);
  std::int64_t arrival_ns = 0;

  for (std::size_t j = 0; j < cfg.jobs; ++j) {
    // Poisson process, then tick quantization: concurrent jobs share event
    // instants, which is what forms multi-job cohorts at the collector.
    const double u = rng.uniform01();
    arrival_ns += static_cast<std::int64_t>(
        -std::log(1.0 - u) *
        static_cast<double>(cfg.mean_interarrival.ns()));
    const std::int64_t start_ns = (arrival_ns / tick_ns) * tick_ns;

    const ClassShape shape = pick_class(cfg, rng.uniform01());
    const std::uint32_t tenant = static_cast<std::uint32_t>(j % cfg.tenants);
    const std::int32_t priority =
        static_cast<std::int32_t>(cfg.tenants) -
        static_cast<std::int32_t>(tenant);
    const std::size_t map_offset = rng.below(hosts.size());
    const std::size_t reduce_offset = rng.below(hosts.size());

    // Reducers initialize at job start — before the first intent wave in
    // the same instant, so the storm exercises the resolved-intent fast
    // path; held-intent resolution is covered by the engine paths.
    for (std::size_t r = 0; r < shape.reducers; ++r) {
      StormEvent e;
      e.kind = StormEvent::Kind::kReducerLocated;
      e.at = util::SimTime{start_ns};
      e.job_serial = j;
      e.reduce_index = r;
      e.server = hosts[(reduce_offset + r % spread) % hosts.size()];
      events.push_back(e);
    }

    for (std::size_t w = 0; w < cfg.waves; ++w) {
      const util::SimTime wave_at{start_ns +
                                  static_cast<std::int64_t>(w) * tick_ns};
      for (std::size_t s = 0; s < shape.map_servers; ++s) {
        const net::NodeId src = hosts[(map_offset + s) % hosts.size()];
        for (std::size_t m = 0; m < shape.maps_per_server; ++m) {
          const std::size_t map_index =
              (w * shape.map_servers + s) * shape.maps_per_server + m;
          for (std::size_t r = 0; r < shape.reducers; ++r) {
            StormEvent e;
            e.kind = StormEvent::Kind::kIntent;
            e.at = wave_at;
            e.job_serial = j;
            e.intent.job_serial = j;
            e.intent.map_index = map_index;
            e.intent.reduce_index = r;
            e.intent.src_server = src;
            e.intent.predicted_wire_bytes = util::Bytes{
                static_cast<std::int64_t>(shape.flow_bytes.as_double() *
                                          (0.5 + rng.uniform01()))};
            e.intent.emitted_at = wave_at;
            e.intent.tenant = tenant;
            e.intent.priority = priority;
            events.push_back(e);
          }
        }
      }
    }

    StormEvent done;
    done.kind = StormEvent::Kind::kJobCompleted;
    done.at = util::SimTime{start_ns +
                            static_cast<std::int64_t>(cfg.waves + 1) * tick_ns};
    done.job_serial = j;
    events.push_back(done);
  }

  // Jobs overlap; stable sort keeps per-instant generation order (reducer
  // locations before same-instant intents of the same job).
  std::stable_sort(events.begin(), events.end(),
                   [](const StormEvent& a, const StormEvent& b) {
                     return a.at < b.at;
                   });
  return events;
}

void schedule_storm(sim::Simulation& sim, core::Collector& collector,
                    const std::vector<StormEvent>& events) {
  for (const StormEvent& e : events) {
    switch (e.kind) {
      case StormEvent::Kind::kReducerLocated:
        sim.at(e.at, [&collector, e] {
          collector.reducer_located(e.job_serial, e.reduce_index, e.server);
        });
        break;
      case StormEvent::Kind::kIntent:
        sim.at(e.at, [&collector, e] { collector.ingest(e.intent); });
        break;
      case StormEvent::Kind::kJobCompleted:
        sim.at(e.at, [&collector, e] { collector.job_completed(e.job_serial); });
        break;
    }
  }
}

std::size_t storm_intent_count(const std::vector<StormEvent>& events) {
  std::size_t n = 0;
  for (const StormEvent& e : events) {
    if (e.kind == StormEvent::Kind::kIntent) ++n;
  }
  return n;
}

}  // namespace pythia::workloads
