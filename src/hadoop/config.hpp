// Cluster and job configuration for the Hadoop 1.x execution model.
//
// Defaults mirror the paper's testbed where known (10 servers in 2 racks,
// intermediate data held in memory, reducer slow-start at 5% of maps,
// 5 parallel copies per reducer) and common Hadoop 1.1.2 settings elsewhere.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hadoop/partition.hpp"
#include "net/types.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pythia::hadoop {

struct ClusterConfig {
  /// Hadoop slave servers (host nodes of the network topology).
  // pythia-lint: allow(fingerprint-skip) filled from the topology builder,
  // which is itself a pure function of the fingerprinted topology knobs —
  // it cannot diverge independently of them.
  std::vector<net::NodeId> servers;
  /// Concurrent map / reduce task slots per tasktracker.
  std::size_t map_slots_per_server = 8;
  std::size_t reduce_slots_per_server = 4;
  /// Fraction of map tasks that must complete before reducers are scheduled
  /// (mapred.reduce.slowstart.completed.maps; Hadoop default 0.05).
  double reduce_slowstart = 0.05;
  /// Concurrent fetches per reducer (mapred.reduce.parallel.copies).
  std::size_t parallel_copies = 5;
  /// Rate at which a reducer copies intermediate data that lives on its own
  /// server (memory-to-memory per the paper's in-memory configuration).
  util::BitsPerSec local_copy_rate = util::BitsPerSec{16e9};  // ~2 GB/s
  /// Per-fetch setup cost (HTTP request to the mapper's tasktracker).
  util::Duration fetch_setup = util::Duration::millis(2);
  /// Reducers learn about finished map outputs by polling for task
  /// completion events on the heartbeat path; a finished output becomes
  /// fetchable only after a uniform delay in [0, this]. This multi-second
  /// gap is precisely what gives Pythia's file-spill-time prediction its
  /// lead over the wire (paper Fig. 5).
  util::Duration completion_event_poll = util::Duration::seconds_i(5);
  /// Tasktracker heartbeat window: task launches are staggered uniformly
  /// within it, modelling jobtracker/tasktracker heartbeat scheduling.
  util::Duration heartbeat_jitter = util::Duration::millis(600);

  // --- fault injection (off by default) ---

  /// Probability that a map attempt runs as a straggler.
  double straggler_probability = 0.0;
  /// Duration multiplier applied to straggler attempts.
  double straggler_slowdown = 5.0;
  /// Probability that a map attempt dies partway through and is retried
  /// (Hadoop reschedules failed attempts on the next heartbeat).
  double map_failure_probability = 0.0;
  /// Attempt cap per map task (mapred.map.max.attempts); once reached the
  /// final attempt is forced through so jobs terminate.
  std::size_t max_task_attempts = 4;

  // --- speculative execution (mapred.map.tasks.speculative.execution) ---

  /// When enabled, a map attempt that outlives the average completed-map
  /// duration by `speculative_slowdown_threshold` gets a backup attempt on
  /// another free slot; the first finisher wins and the loser is killed.
  bool speculative_execution = false;
  double speculative_slowdown_threshold = 1.8;

  /// MPTCP/packet-spraying transport: each remote fetch is striped equally
  /// across every equal-cost path instead of riding one hash-selected path.
  /// An idealized multipath baseline — load-balanced without any
  /// application knowledge — used by the kPacketSpray scheduler arm.
  bool multipath_spray = false;
};

struct JobSpec {
  std::string name = "job";
  /// Total job input; the number of map tasks is input/block (rounded up)
  /// unless `num_maps_override` is set.
  util::Bytes input = util::Bytes{64 * 1000 * 1000};
  util::Bytes block = util::Bytes{64 * 1000 * 1000};
  std::size_t num_maps_override = 0;
  std::size_t num_reducers = 2;

  /// Intermediate (shuffle) volume per input byte: 1.0 for sort-like jobs,
  /// <1 for filtering/aggregation, >1 for expansion.
  double map_output_ratio = 1.0;
  /// Key-space skew across reducers.
  PartitionSkew skew;
  /// Relative stddev of per-mapper output volume (mapper-to-mapper churn).
  double mapper_output_jitter = 0.05;

  /// Map task cost: fixed overhead plus input processing at `map_rate`.
  util::Duration map_overhead = util::Duration::millis(800);
  util::BitsPerSec map_rate = util::BitsPerSec{8e8};  // 100 MB/s of input
  /// Relative stddev of map task duration.
  double map_duration_jitter = 0.08;

  /// Reduce task cost: fixed overhead plus merged-input processing.
  util::Duration reduce_overhead = util::Duration::millis(1200);
  util::BitsPerSec reduce_rate = util::BitsPerSec{8e8};
  double reduce_duration_jitter = 0.08;

  /// Output bytes per shuffled byte (reduce-side contraction/expansion).
  double output_ratio = 1.0;
  /// HDFS write-back replication factor; 0 disables output modelling (the
  /// paper's Fig. 1a "distributed file system phases are omitted" view,
  /// and the default throughout the evaluation reproduction). With r >= 2
  /// each reducer streams r-1 remote replicas over the data network as
  /// ordinary (non-shuffle) traffic after its reduce function finishes.
  std::size_t dfs_replication = 0;

  [[nodiscard]] std::size_t num_maps() const {
    if (num_maps_override > 0) return num_maps_override;
    const auto blocks =
        (input.count() + block.count() - 1) / block.count();
    return static_cast<std::size_t>(blocks > 0 ? blocks : 1);
  }
  [[nodiscard]] util::Bytes input_per_map() const {
    return util::Bytes{input.count() /
                       static_cast<std::int64_t>(num_maps())};
  }
  /// Expected total shuffle volume (before per-mapper jitter).
  [[nodiscard]] util::Bytes expected_shuffle_volume() const {
    return input.scaled(map_output_ratio);
  }
};

}  // namespace pythia::hadoop
