#include "hadoop/job.hpp"

#include <algorithm>

namespace pythia::hadoop {

util::SimTime JobResult::map_phase_end() const {
  util::SimTime end = submitted;
  for (const auto& m : maps) end = std::max(end, m.finished);
  return end;
}

util::SimTime JobResult::shuffle_phase_end() const {
  util::SimTime end = submitted;
  for (const auto& r : reducers) end = std::max(end, r.shuffle_done);
  return end;
}

util::Bytes JobResult::remote_shuffle_bytes() const {
  util::Bytes total;
  for (const auto& f : fetches) {
    if (f.remote) total += f.payload;
  }
  return total;
}

util::Bytes JobResult::total_shuffle_bytes() const {
  util::Bytes total;
  for (const auto& f : fetches) total += f.payload;
  return total;
}

std::vector<double> JobResult::reducer_load_profile() const {
  std::vector<double> loads(reducers.size(), 0.0);
  for (const auto& r : reducers) {
    loads[r.index] = r.shuffled.as_double();
  }
  return loads;
}

}  // namespace pythia::hadoop
