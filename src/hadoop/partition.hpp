// Reducer partition weights and key-space skew models.
//
// MapReduce hash-partitions intermediate keys across reducers; real key
// spaces are rarely uniform (the paper's Fig. 1a sort job has reducer-0
// receiving 5x the data of reducer-1). PartitionSkew describes how the
// aggregate key mass splits across reducers; per-mapper realizations add
// bounded multiplicative noise around those weights.
#pragma once

#include <cstddef>
#include <vector>

#include "util/random.hpp"

namespace pythia::hadoop {

enum class SkewKind {
  kUniform,   // every reducer receives the same expected share
  kZipf,      // reducer shares follow a Zipf(s) distribution over rank
  kExplicit,  // caller-provided weights
};

struct PartitionSkew {
  SkewKind kind = SkewKind::kUniform;
  /// Zipf exponent (kZipf); s = 0 degenerates to uniform.
  double zipf_s = 0.0;
  /// Relative weights (kExplicit); need not be normalized.
  std::vector<double> weights;

  [[nodiscard]] static PartitionSkew uniform() { return {}; }
  [[nodiscard]] static PartitionSkew zipf(double s) {
    return PartitionSkew{SkewKind::kZipf, s, {}};
  }
  [[nodiscard]] static PartitionSkew explicit_weights(
      std::vector<double> w) {
    return PartitionSkew{SkewKind::kExplicit, 0.0, std::move(w)};
  }
};

/// Normalized per-reducer shares (sum exactly 1.0, every entry > 0) for a
/// job with `num_reducers` reducers. For kZipf the heaviest reducer is
/// shuffled to a deterministic position derived from `rng` so the hot
/// reducer is not always index 0.
std::vector<double> reducer_weights(const PartitionSkew& skew,
                                    std::size_t num_reducers,
                                    util::Xoshiro256& rng);

/// One mapper's realized per-reducer output split: `base_weights` perturbed
/// by multiplicative lognormal-ish noise of relative stddev `jitter`, then
/// renormalized. Models mapper-local key distributions.
std::vector<double> mapper_partition(const std::vector<double>& base_weights,
                                     double jitter, util::Xoshiro256& rng);

/// max(weight) / mean(weight): 1.0 means perfectly balanced.
double skew_factor(const std::vector<double>& weights);

}  // namespace pythia::hadoop
