#include "hadoop/partition.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace pythia::hadoop {

namespace {

void normalize(std::vector<double>& w) {
  const double sum = std::accumulate(w.begin(), w.end(), 0.0);
  assert(sum > 0.0);
  for (auto& x : w) x /= sum;
}

}  // namespace

std::vector<double> reducer_weights(const PartitionSkew& skew,
                                    std::size_t num_reducers,
                                    util::Xoshiro256& rng) {
  assert(num_reducers > 0);
  std::vector<double> w(num_reducers, 1.0);
  switch (skew.kind) {
    case SkewKind::kUniform:
      break;
    case SkewKind::kZipf: {
      for (std::size_t i = 0; i < num_reducers; ++i) {
        w[i] = 1.0 / std::pow(static_cast<double>(i + 1),
                              std::max(0.0, skew.zipf_s));
      }
      // Deterministic shuffle so the heavy reducer index varies with seed.
      for (std::size_t i = num_reducers; i > 1; --i) {
        const auto j = static_cast<std::size_t>(rng.below(i));
        std::swap(w[i - 1], w[j]);
      }
      break;
    }
    case SkewKind::kExplicit: {
      assert(skew.weights.size() == num_reducers &&
             "explicit weights must match the reducer count");
      w = skew.weights;
      for (double x : w) {
        assert(x > 0.0 && "explicit weights must be positive");
        (void)x;
      }
      break;
    }
  }
  normalize(w);
  return w;
}

std::vector<double> mapper_partition(const std::vector<double>& base_weights,
                                     double jitter, util::Xoshiro256& rng) {
  assert(!base_weights.empty());
  assert(jitter >= 0.0);
  std::vector<double> w(base_weights.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    // Multiplicative noise, floored so a partition never vanishes entirely.
    const double factor = std::max(0.05, 1.0 + rng.gaussian(0.0, jitter));
    w[i] = base_weights[i] * factor;
  }
  normalize(w);
  return w;
}

double skew_factor(const std::vector<double>& weights) {
  assert(!weights.empty());
  const double mean =
      std::accumulate(weights.begin(), weights.end(), 0.0) /
      static_cast<double>(weights.size());
  const double mx = *std::max_element(weights.begin(), weights.end());
  return mean > 0.0 ? mx / mean : 1.0;
}

}  // namespace pythia::hadoop
