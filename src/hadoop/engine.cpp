#include "hadoop/engine.hpp"

#include <algorithm>
#include <cassert>

#include "hadoop/partition.hpp"
#include "sim/snapshot.hpp"
#include "util/log.hpp"

namespace pythia::hadoop {

MapReduceEngine::MapReduceEngine(sim::Simulation& sim, net::Fabric& fabric,
                                 sdn::Controller& controller,
                                 ClusterConfig cluster)
    : sim_(&sim),
      fabric_(&fabric),
      controller_(&controller),
      cluster_(std::move(cluster)) {
  assert(!cluster_.servers.empty());
  assert(cluster_.map_slots_per_server > 0);
  assert(cluster_.reduce_slots_per_server > 0);
  assert(cluster_.parallel_copies > 0);
  slots_.resize(cluster_.servers.size());
  for (auto& s : slots_) {
    s.map_free = cluster_.map_slots_per_server;
    s.reduce_free = cluster_.reduce_slots_per_server;
  }
}

std::size_t MapReduceEngine::submit(JobSpec spec, JobCallback on_done) {
  const std::size_t serial = jobs_.size();
  auto job = std::make_unique<JobState>();
  job->serial = serial;
  job->spec = std::move(spec);
  job->on_done = std::move(on_done);
  job->submitted = sim_->now();
  job->weights = reducer_weights(job->spec.skew, job->spec.num_reducers,
                                 sim_->rng("hadoop.skew"));
  const std::size_t maps = job->spec.num_maps();
  for (std::size_t m = 0; m < maps; ++m) job->pending_maps.push_back(m);
  job->map_attempts.assign(maps, 0);
  job->map_runtime.assign(maps, {});
  job->reducers.resize(job->spec.num_reducers);
  for (std::size_t r = 0; r < job->spec.num_reducers; ++r) {
    job->reducers[r].index = r;
  }
  job->result.name = job->spec.name;
  job->result.submitted = job->submitted;
  job->result.maps.resize(maps);
  job->result.reducers.resize(job->spec.num_reducers);

  jobs_.push_back(std::move(job));
  PYTHIA_LOG(kInfo, "hadoop") << "submitted job '" << jobs_.back()->spec.name
                              << "' (" << maps << " maps, "
                              << jobs_.back()->spec.num_reducers
                              << " reducers)";
  // Run the scheduler from the event loop so submit() itself stays cheap.
  sim_->after(util::Duration::zero(), [this] { schedule_pass(); });
  return serial;
}

const std::vector<double>& MapReduceEngine::job_reducer_weights(
    std::size_t serial) const {
  assert(serial < jobs_.size());
  return jobs_[serial]->weights;
}

util::Duration MapReduceEngine::jittered(util::Duration base,
                                         double rel_stddev,
                                         util::Xoshiro256& rng) const {
  if (rel_stddev <= 0.0) return base;
  const double factor = std::max(0.2, 1.0 + rng.gaussian(0.0, rel_stddev));
  return util::Duration::from_seconds(base.seconds() * factor);
}

std::uint16_t MapReduceEngine::next_ephemeral_port() {
  if (ephemeral_port_ >= 60000) ephemeral_port_ = 30000;
  return ephemeral_port_++;
}

std::size_t MapReduceEngine::find_free_map_slot() {
  for (std::size_t probe = 0; probe < slots_.size(); ++probe) {
    const std::size_t s = (map_rr_cursor_ + probe) % slots_.size();
    if (slots_[s].map_free > 0) {
      map_rr_cursor_ = (s + 1) % slots_.size();
      return s;
    }
  }
  return SIZE_MAX;
}

void MapReduceEngine::schedule_pass() {
  // FIFO across jobs: earlier jobs grab slots first.
  for (auto& job_ptr : jobs_) {
    JobState& job = *job_ptr;
    if (job.completed) continue;

    // Map tasks onto free map slots, round-robin over servers.
    while (!job.pending_maps.empty()) {
      const std::size_t chosen = find_free_map_slot();
      if (chosen == SIZE_MAX) break;  // cluster map-saturated
      const std::size_t map_index = job.pending_maps.front();
      job.pending_maps.pop_front();
      --slots_[chosen].map_free;
      launch_map(job, map_index, chosen);
    }

    // Reducers once slow-start is met (at least one map must be done).
    const auto maps_total = static_cast<double>(job.spec.num_maps());
    const bool slowstart_met =
        job.maps_finished >= 1 &&
        static_cast<double>(job.maps_finished) >=
            cluster_.reduce_slowstart * maps_total;
    if (slowstart_met) {
      while (job.reducers_scheduled < job.spec.num_reducers) {
        std::size_t chosen = SIZE_MAX;
        for (std::size_t probe = 0; probe < slots_.size(); ++probe) {
          const std::size_t s = (reduce_rr_cursor_ + probe) % slots_.size();
          if (slots_[s].reduce_free > 0) {
            chosen = s;
            break;
          }
        }
        if (chosen == SIZE_MAX) break;  // no reduce slot free
        reduce_rr_cursor_ = (chosen + 1) % slots_.size();
        --slots_[chosen].reduce_free;
        launch_reducer(job, job.reducers_scheduled++, chosen);
      }
    }
  }
}

void MapReduceEngine::launch_map(JobState& job, std::size_t map_index,
                                 std::size_t server_ordinal) {
  auto& rng = sim_->rng("hadoop.map");
  // Heartbeat stagger: the tasktracker picks the task up within the window.
  const auto stagger = util::Duration{static_cast<std::int64_t>(
      rng.uniform01() *
      static_cast<double>(cluster_.heartbeat_jitter.ns()))};
  ++job.maps_running;

  auto& runtime = job.map_runtime[map_index];
  const std::uint64_t attempt_id = ++attempt_counter_;
  runtime.running.push_back(
      JobState::MapAttempt{attempt_id, server_ordinal, {}});

  auto find_attempt = [&job, map_index,
                       attempt_id]() -> JobState::MapAttempt* {
    for (auto& att : job.map_runtime[map_index].running) {
      if (att.id == attempt_id) return &att;
    }
    return nullptr;
  };
  auto drop_attempt = [&job, map_index, attempt_id] {
    auto& running = job.map_runtime[map_index].running;
    running.erase(std::remove_if(running.begin(), running.end(),
                                 [attempt_id](const auto& a) {
                                   return a.id == attempt_id;
                                 }),
                  running.end());
  };

  runtime.running.back().next_event = sim_->after(stagger, [this, &job,
                                                            map_index,
                                                            server_ordinal,
                                                            find_attempt,
                                                            drop_attempt] {
    const util::SimTime started = sim_->now();
    auto& rng2 = sim_->rng("hadoop.map");
    const auto work = util::transfer_time(job.spec.input_per_map(),
                                          job.spec.map_rate);
    auto duration = jittered(job.spec.map_overhead + work,
                             job.spec.map_duration_jitter, rng2);

    // Fault injection: straggling and mid-attempt failure.
    auto& fault_rng = sim_->rng("hadoop.fault");
    if (cluster_.straggler_probability > 0.0 &&
        fault_rng.uniform01() < cluster_.straggler_probability) {
      duration = util::Duration::from_seconds(duration.seconds() *
                                              cluster_.straggler_slowdown);
      ++job.result.stragglers;
    }
    const std::size_t attempt_no = ++job.map_attempts[map_index];
    const bool may_fail = cluster_.map_failure_probability > 0.0 &&
                          attempt_no < cluster_.max_task_attempts;
    JobState::MapAttempt* att = find_attempt();
    assert(att != nullptr && "attempt retired before its stagger elapsed");

    if (may_fail &&
        fault_rng.uniform01() < cluster_.map_failure_probability) {
      // The attempt dies partway through; the slot is held until the death,
      // then the task re-enters the pending queue unless a sibling attempt
      // (speculation) is still alive or already won.
      const auto fail_after = util::Duration::from_seconds(
          duration.seconds() * fault_rng.uniform(0.1, 0.9));
      att->next_event = sim_->after(
          fail_after, [this, &job, map_index, server_ordinal, drop_attempt] {
            ++job.result.map_retries;
            --job.maps_running;
            ++slots_[server_ordinal].map_free;
            drop_attempt();
            auto& rt = job.map_runtime[map_index];
            if (!rt.done && rt.running.empty()) {
              job.pending_maps.push_back(map_index);
            }
            PYTHIA_LOG(kDebug, "hadoop")
                << "map " << map_index << " attempt failed; rescheduling";
            schedule_pass();
          });
      return;
    }

    att->next_event = sim_->after(
        duration, [this, &job, map_index, server_ordinal, started] {
          finish_map(job, map_index, server_ordinal, started);
        });

    maybe_speculate(job, map_index);
  });
}

void MapReduceEngine::maybe_speculate(JobState& job, std::size_t map_index) {
  if (!cluster_.speculative_execution) return;
  auto& runtime = job.map_runtime[map_index];
  if (runtime.backup_launched) return;
  // The jobtracker compares an attempt's age against the typical map
  // duration; the nominal (spec) duration serves as the progress model.
  const auto nominal =
      job.spec.map_overhead +
      util::transfer_time(job.spec.input_per_map(), job.spec.map_rate);
  const auto check_after = util::Duration::from_seconds(
      nominal.seconds() * cluster_.speculative_slowdown_threshold);
  sim_->after(check_after, [this, &job, map_index] {
    auto& rt = job.map_runtime[map_index];
    if (rt.done || rt.backup_launched || rt.running.empty()) return;
    const std::size_t chosen = find_free_map_slot();
    if (chosen == SIZE_MAX) return;  // no spare capacity to speculate with
    rt.backup_launched = true;
    --slots_[chosen].map_free;
    PYTHIA_LOG(kDebug, "hadoop")
        << "speculative backup for map " << map_index;
    launch_map(job, map_index, chosen);
  });
}

void MapReduceEngine::retire_attempts(JobState& job, std::size_t map_index) {
  auto& runtime = job.map_runtime[map_index];
  for (auto& att : runtime.running) {
    att.next_event.cancel();  // no-op for the winner's already-fired event
    ++slots_[att.server_ordinal].map_free;
    --job.maps_running;
  }
  runtime.running.clear();
}

void MapReduceEngine::finish_map(JobState& job, std::size_t map_index,
                                 std::size_t server_ordinal,
                                 util::SimTime started) {
  auto& runtime = job.map_runtime[map_index];
  if (runtime.done) {
    // A losing attempt whose finish event slipped through: just release.
    --job.maps_running;
    ++slots_[server_ordinal].map_free;
    return;
  }
  runtime.done = true;
  const net::NodeId server = cluster_.servers[server_ordinal];
  job.result.maps[map_index] =
      TaskSpan{map_index, server, started, sim_->now()};
  ++job.maps_finished;
  job.finished_map_duration_sum += (sim_->now() - started).seconds();
  retire_attempts(job, map_index);  // frees this slot and kills any backup

  // Spill the intermediate output and compute its per-reducer index — the
  // information Pythia's middleware decodes at this exact moment.
  auto& rng = sim_->rng("hadoop.output");
  const double out_jitter =
      std::max(0.1, 1.0 + rng.gaussian(0.0, job.spec.mapper_output_jitter));
  const util::Bytes total_out =
      job.spec.input_per_map().scaled(job.spec.map_output_ratio * out_jitter);
  const auto split =
      mapper_partition(job.weights, job.spec.mapper_output_jitter, rng);

  MapOutputNotice notice;
  notice.job_serial = job.serial;
  notice.map_index = map_index;
  notice.server = server;
  notice.at = sim_->now();
  notice.per_reducer_payload.reserve(job.spec.num_reducers);
  for (std::size_t r = 0; r < job.spec.num_reducers; ++r) {
    notice.per_reducer_payload.push_back(total_out.scaled(split[r]));
  }
  for (auto* obs : observers_) obs->on_map_output_ready(notice);

  // Each reducer learns of this output on its next completion-event poll
  // (uniform within the poll window), then enqueues the fetch.
  for (std::size_t r = 0; r < job.spec.num_reducers; ++r) {
    // The event fetcher polls periodically; delivery lands no earlier than
    // 20% into the window (a fresh event is never visible before the next
    // poll tick) and uniformly across the rest of it.
    const auto poll_delay = util::Duration{static_cast<std::int64_t>(
        (0.2 + 0.8 * rng.uniform01()) *
        static_cast<double>(cluster_.completion_event_poll.ns()))};
    const util::Bytes payload = notice.per_reducer_payload[r];
    sim_->after(poll_delay, [this, &job, r, map_index, server, payload] {
      ReducerState& red = job.reducers[r];
      red.pending.push_back(
          PendingFetch{map_index, server, payload, sim_->now()});
      if (red.scheduled) pump_reducer(job, red);
    });
  }

  schedule_pass();
}

void MapReduceEngine::launch_reducer(JobState& job, std::size_t reduce_index,
                                     std::size_t server_ordinal) {
  ReducerState& red = job.reducers[reduce_index];
  auto& rng = sim_->rng("hadoop.reduce");
  const auto stagger = util::Duration{static_cast<std::int64_t>(
      rng.uniform01() *
      static_cast<double>(cluster_.heartbeat_jitter.ns()))};
  sim_->after(stagger, [this, &job, &red, server_ordinal] {
    red.server = cluster_.servers[server_ordinal];
    red.scheduled = true;
    red.started = sim_->now();
    // Rewrite the enqueue timestamps of outputs that were waiting for this
    // reducer: they only became fetchable now.
    for (auto& f : red.pending) f.enqueued = sim_->now();
    for (auto* obs : observers_) {
      obs->on_reducer_started(job.serial, red.index, red.server, sim_->now());
    }
    PYTHIA_LOG(kDebug, "hadoop")
        << "reducer " << red.index << " of job " << job.serial
        << " started on server " << red.server.value();
    pump_reducer(job, red);
    // Remember which server ordinal holds the slot for release at finish.
    red.shuffle_done = util::SimTime::max();  // sentinel until done
    (void)server_ordinal;
  });
  // Stash ordinal inside the record for slot release.
  job.result.reducers[reduce_index].index = reduce_index;
  job.result.reducers[reduce_index].server = cluster_.servers[server_ordinal];
}

void MapReduceEngine::pump_reducer(JobState& job, ReducerState& red) {
  while (red.inflight < cluster_.parallel_copies && !red.pending.empty()) {
    PendingFetch fetch = red.pending.front();
    red.pending.pop_front();
    ++red.inflight;
    begin_fetch(job, red, std::move(fetch));
  }
}

void MapReduceEngine::begin_fetch(JobState& job, ReducerState& red,
                                  PendingFetch fetch) {
  // HTTP fetch setup to the mapper-side tasktracker, then the transfer.
  sim_->after(cluster_.fetch_setup, [this, &job, &red, fetch] {
    FetchRecord record;
    record.map_index = fetch.map_index;
    record.reduce_index = red.index;
    record.src_server = fetch.src_server;
    record.dst_server = red.server;
    record.payload = fetch.payload;
    record.enqueued = fetch.enqueued;
    record.started = sim_->now();
    record.remote = fetch.src_server != red.server;

    if (!record.remote) {
      // Server-local copy: memory-to-memory, no network involvement.
      const auto d =
          util::transfer_time(fetch.payload, cluster_.local_copy_rate);
      for (auto* obs : observers_) {
        obs->on_fetch_started(job.serial, record, net::FlowId{});
      }
      sim_->after(d, [this, &job, &red, record]() mutable {
        record.completed = sim_->now();
        finish_fetch(job, red, record);
      });
      return;
    }

    net::FiveTuple tuple;
    const auto& topo = fabric_->topology();
    tuple.src_ip = topo.address_of(fetch.src_server);
    tuple.dst_ip = topo.address_of(red.server);
    tuple.src_port = net::kShufflePort;
    tuple.dst_port = next_ephemeral_port();
    tuple.proto = 6;

    if (cluster_.multipath_spray) {
      // MPTCP-style striping: one subflow per equal-cost path, equal shares;
      // the fetch completes when the last stripe lands.
      const auto& candidates =
          controller_->routing().paths(fetch.src_server, red.server);
      assert(!candidates.empty());
      const auto stripes = static_cast<std::int64_t>(candidates.size());
      auto remaining = std::make_shared<std::int64_t>(stripes);
      bool first_stripe = true;
      for (std::int64_t s = 0; s < stripes; ++s) {
        net::FlowSpec spec;
        spec.src = fetch.src_server;
        spec.dst = red.server;
        // Last stripe takes the rounding remainder.
        const std::int64_t share = fetch.payload.count() / stripes;
        spec.size = util::Bytes{s + 1 == stripes
                                    ? fetch.payload.count() - share * (stripes - 1)
                                    : share};
        spec.path = candidates[static_cast<std::size_t>(s)].links;
        spec.tuple = tuple;
        spec.tuple.dst_port = next_ephemeral_port();  // distinct subflows
        spec.cls = net::FlowClass::kShuffle;
        const net::FlowId flow = fabric_->start_flow(
            std::move(spec), [this, &job, &red, record, remaining](
                                 net::FlowId, util::SimTime at) mutable {
              if (--*remaining == 0) {
                record.completed = at;
                finish_fetch(job, red, record);
              }
            });
        if (first_stripe) {
          first_stripe = false;
          for (auto* obs : observers_) {
            obs->on_fetch_started(job.serial, record, flow);
          }
        }
      }
      return;
    }

    const net::Path& path =
        controller_->resolve(fetch.src_server, red.server, tuple);
    net::FlowSpec spec;
    spec.src = fetch.src_server;
    spec.dst = red.server;
    spec.size = fetch.payload;
    spec.path = path.links;
    spec.tuple = tuple;
    spec.cls = net::FlowClass::kShuffle;
    const net::FlowId flow = fabric_->start_flow(
        std::move(spec),
        [this, &job, &red, record](net::FlowId, util::SimTime at) mutable {
          record.completed = at;
          finish_fetch(job, red, record);
        });
    for (auto* obs : observers_) {
      obs->on_fetch_started(job.serial, record, flow);
    }
  });
}

void MapReduceEngine::finish_fetch(JobState& job, ReducerState& red,
                                   const FetchRecord& record) {
  assert(red.inflight > 0);
  --red.inflight;
  ++red.fetched;
  red.shuffled += record.payload;
  job.result.fetches.push_back(record);
  for (auto* obs : observers_) obs->on_fetch_completed(job.serial, record);

  if (red.fetched == job.spec.num_maps()) {
    // Shuffle barrier cleared for this reducer: run the reduce function.
    red.shuffle_done = sim_->now();
    auto& rng = sim_->rng("hadoop.reduce");
    const auto work = util::transfer_time(red.shuffled, job.spec.reduce_rate);
    const auto duration = jittered(job.spec.reduce_overhead + work,
                                   job.spec.reduce_duration_jitter, rng);
    // Locate the slot holder: the server this reducer runs on.
    std::size_t ordinal = SIZE_MAX;
    for (std::size_t s = 0; s < cluster_.servers.size(); ++s) {
      if (cluster_.servers[s] == red.server) {
        ordinal = s;
        break;
      }
    }
    assert(ordinal != SIZE_MAX);
    sim_->after(duration, [this, &job, &red, ordinal] {
      write_output(job, red, ordinal);
    });
  } else {
    pump_reducer(job, red);
  }
}

void MapReduceEngine::write_output(JobState& job, ReducerState& red,
                                   std::size_t server_ordinal) {
  const std::size_t replicas = job.spec.dfs_replication;
  if (replicas < 2 || cluster_.servers.size() < 2) {
    // Output modelling disabled (or single local replica): done.
    finish_reducer(job, red, server_ordinal);
    return;
  }
  const util::Bytes output = red.shuffled.scaled(job.spec.output_ratio);
  if (output <= util::Bytes::zero()) {
    finish_reducer(job, red, server_ordinal);
    return;
  }

  // First replica is the local write; each additional replica streams to a
  // distinct other server as ordinary datacenter traffic (not shuffle: the
  // Pythia middleware neither predicts nor steers it).
  auto& rng = sim_->rng("hadoop.dfs");
  auto remaining = std::make_shared<std::size_t>(replicas - 1);
  for (std::size_t r = 0; r + 1 < replicas; ++r) {
    std::size_t target = server_ordinal;
    while (target == server_ordinal) {
      target = static_cast<std::size_t>(rng.below(cluster_.servers.size()));
    }
    const net::NodeId dst = cluster_.servers[target];
    net::FiveTuple tuple;
    const auto& topo = fabric_->topology();
    tuple.src_ip = topo.address_of(red.server);
    tuple.dst_ip = topo.address_of(dst);
    tuple.src_port = next_ephemeral_port();
    tuple.dst_port = 50010;  // HDFS datanode
    net::FlowSpec spec;
    spec.src = red.server;
    spec.dst = dst;
    spec.size = output;
    spec.path = controller_->resolve(red.server, dst, tuple).links;
    spec.tuple = tuple;
    spec.cls = net::FlowClass::kOther;
    fabric_->start_flow(spec, [this, &job, &red, server_ordinal, remaining](
                                  net::FlowId, util::SimTime) {
      if (--*remaining == 0) finish_reducer(job, red, server_ordinal);
    });
  }
}

void MapReduceEngine::finish_reducer(JobState& job, ReducerState& red,
                                     std::size_t server_ordinal) {
  ++slots_[server_ordinal].reduce_free;
  ++job.reducers_finished;

  ReducerRecord& rec = job.result.reducers[red.index];
  rec.index = red.index;
  rec.server = red.server;
  rec.started = red.started;
  rec.shuffle_done = red.shuffle_done;
  rec.finished = sim_->now();
  rec.shuffled = red.shuffled;

  if (job.reducers_finished == job.spec.num_reducers) {
    complete_job(job);
  }
  schedule_pass();
}

void MapReduceEngine::complete_job(JobState& job) {
  job.completed = true;
  job.result.completed = sim_->now();
  ++jobs_completed_;
  PYTHIA_LOG(kInfo, "hadoop")
      << "job '" << job.spec.name << "' completed in "
      << job.result.completion_time().seconds() << "s";
  for (auto* obs : observers_) {
    obs->on_job_completed(job.serial, job.result);
  }
  if (job.on_done) job.on_done(job.result);
}

void MapReduceEngine::encode_state(sim::StateEncoder& enc) const {
  enc.put_u32(static_cast<std::uint32_t>(slots_.size()));
  for (const ServerSlots& s : slots_) {
    enc.put_u64(s.map_free);
    enc.put_u64(s.reduce_free);
  }
  enc.put_u64(attempt_counter_);
  enc.put_u64(map_rr_cursor_);
  enc.put_u64(reduce_rr_cursor_);
  enc.put_u32(ephemeral_port_);
  enc.put_u64(jobs_completed_);

  enc.put_u32(static_cast<std::uint32_t>(jobs_.size()));
  for (const auto& job_ptr : jobs_) {
    const JobState& job = *job_ptr;
    enc.put_u64(job.serial);
    enc.put_time(job.submitted);
    enc.put_bool(job.completed);
    enc.put_u32(static_cast<std::uint32_t>(job.weights.size()));
    for (double w : job.weights) enc.put_f64(w);
    enc.put_u32(static_cast<std::uint32_t>(job.pending_maps.size()));
    for (std::size_t m : job.pending_maps) enc.put_u64(m);
    enc.put_u32(static_cast<std::uint32_t>(job.map_attempts.size()));
    for (std::size_t a : job.map_attempts) enc.put_u64(a);
    enc.put_u32(static_cast<std::uint32_t>(job.map_runtime.size()));
    for (const JobState::MapRuntime& rt : job.map_runtime) {
      enc.put_bool(rt.done);
      enc.put_bool(rt.backup_launched);
      enc.put_u32(static_cast<std::uint32_t>(rt.running.size()));
      for (const JobState::MapAttempt& att : rt.running) {
        enc.put_u64(att.id);
        enc.put_u64(att.server_ordinal);
        enc.put_bool(att.next_event.valid());
        enc.put_bool(att.next_event.valid() && att.next_event.cancelled());
      }
    }
    enc.put_f64(job.finished_map_duration_sum);
    enc.put_u64(job.maps_finished);
    enc.put_u64(job.maps_running);
    enc.put_u64(job.reducers_scheduled);
    enc.put_u64(job.reducers_finished);

    enc.put_u32(static_cast<std::uint32_t>(job.reducers.size()));
    for (const ReducerState& red : job.reducers) {
      enc.put_u64(red.index);
      enc.put_u32(red.server.value());
      enc.put_bool(red.scheduled);
      enc.put_time(red.started);
      enc.put_u32(static_cast<std::uint32_t>(red.pending.size()));
      for (const PendingFetch& pf : red.pending) {
        enc.put_u64(pf.map_index);
        enc.put_u32(pf.src_server.value());
        enc.put_i64(pf.payload.count());
        enc.put_time(pf.enqueued);
      }
      enc.put_u64(red.inflight);
      enc.put_u64(red.fetched);
      enc.put_i64(red.shuffled.count());
      enc.put_time(red.shuffle_done);
    }

    const JobResult& res = job.result;
    enc.put_string(res.name);
    enc.put_time(res.submitted);
    enc.put_time(res.completed);
    enc.put_u64(res.map_retries);
    enc.put_u64(res.stragglers);
    enc.put_u32(static_cast<std::uint32_t>(res.maps.size()));
    for (const TaskSpan& t : res.maps) {
      enc.put_u64(t.index);
      enc.put_u32(t.server.value());
      enc.put_time(t.started);
      enc.put_time(t.finished);
    }
    enc.put_u32(static_cast<std::uint32_t>(res.reducers.size()));
    for (const ReducerRecord& r : res.reducers) {
      enc.put_u64(r.index);
      enc.put_u32(r.server.value());
      enc.put_time(r.started);
      enc.put_time(r.shuffle_done);
      enc.put_time(r.finished);
      enc.put_i64(r.shuffled.count());
    }
    enc.put_u32(static_cast<std::uint32_t>(res.fetches.size()));
    for (const FetchRecord& f : res.fetches) {
      enc.put_u64(f.map_index);
      enc.put_u64(f.reduce_index);
      enc.put_u32(f.src_server.value());
      enc.put_u32(f.dst_server.value());
      enc.put_i64(f.payload.count());
      enc.put_time(f.enqueued);
      enc.put_time(f.started);
      enc.put_time(f.completed);
      enc.put_bool(f.remote);
    }
  }
}

}  // namespace pythia::hadoop
