// Job execution records: task spans, fetch records, and the JobResult the
// engine hands back. These are the raw material for the Fig. 1a sequence
// diagram, the speedup tables and all shuffle statistics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/types.hpp"
#include "util/time.hpp"
#include "util/units.hpp"

namespace pythia::hadoop {

struct TaskSpan {
  std::size_t index = 0;
  net::NodeId server;
  util::SimTime started;
  util::SimTime finished;

  [[nodiscard]] util::Duration duration() const { return finished - started; }
};

/// One reducer's phase boundaries.
struct ReducerRecord {
  std::size_t index = 0;
  net::NodeId server;
  util::SimTime started;       // task launch (begins fetching)
  util::SimTime shuffle_done;  // last map output fetched
  util::SimTime finished;      // reduce function complete
  util::Bytes shuffled;        // total bytes fetched (payload)

  [[nodiscard]] util::Duration shuffle_duration() const {
    return shuffle_done - started;
  }
  [[nodiscard]] util::Duration reduce_duration() const {
    return finished - shuffle_done;
  }
};

/// One map-output fetch (a shuffle sub-transfer).
struct FetchRecord {
  std::size_t map_index = 0;
  std::size_t reduce_index = 0;
  net::NodeId src_server;
  net::NodeId dst_server;
  util::Bytes payload;
  util::SimTime enqueued;   // fetch became possible
  util::SimTime started;    // copy slot acquired, transfer began
  util::SimTime completed;
  bool remote = false;      // crossed the network (vs local copy)

  [[nodiscard]] util::Duration queueing() const { return started - enqueued; }
  [[nodiscard]] util::Duration transfer() const {
    return completed - started;
  }
};

struct JobResult {
  std::string name;
  util::SimTime submitted;
  util::SimTime completed;

  std::vector<TaskSpan> maps;
  std::vector<ReducerRecord> reducers;
  std::vector<FetchRecord> fetches;

  /// Fault-injection accounting: failed map attempts that were retried, and
  /// attempts that ran as stragglers.
  std::size_t map_retries = 0;
  std::size_t stragglers = 0;

  [[nodiscard]] util::Duration completion_time() const {
    return completed - submitted;
  }
  /// Time of the last map finish.
  [[nodiscard]] util::SimTime map_phase_end() const;
  /// Time of the last shuffle completion across reducers.
  [[nodiscard]] util::SimTime shuffle_phase_end() const;
  /// Total payload bytes that crossed the network (remote fetches only).
  [[nodiscard]] util::Bytes remote_shuffle_bytes() const;
  /// Total shuffle payload including server-local copies.
  [[nodiscard]] util::Bytes total_shuffle_bytes() const;
  /// Per-reducer shuffled payloads, index-ordered (skew analysis).
  [[nodiscard]] std::vector<double> reducer_load_profile() const;
};

}  // namespace pythia::hadoop
