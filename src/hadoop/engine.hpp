// Hadoop MapReduce execution engine (discrete-event model of Hadoop 1.x).
//
// Reproduces the mechanics the paper depends on:
//  * a jobtracker assigning map/reduce tasks to per-server slots over
//    heartbeat-staggered launches;
//  * intermediate map output spilled (and its per-reducer index known) at
//    map-task completion time — the instant Pythia's instrumentation fires;
//  * reducers launched after the slow-start fraction of maps completes, each
//    fetching every map's output with a bounded number of parallel copies;
//  * the shuffle barrier: the reduce function starts only after the last
//    fetch, so one slow flow delays the whole job.
//
// Remote fetches are elastic flows on the network fabric, with their path
// resolved through the SDN controller (active rule, else ECMP).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "hadoop/config.hpp"
#include "hadoop/job.hpp"
#include "net/fabric.hpp"
#include "sdn/controller.hpp"
#include "sim/simulation.hpp"

namespace pythia::hadoop {

/// What the instrumentation middleware decodes from the spilled index file
/// the moment a map task completes: per-reducer intermediate output sizes
/// (application-layer payload bytes) plus the task's network location.
struct MapOutputNotice {
  std::size_t job_serial = 0;
  std::size_t map_index = 0;
  net::NodeId server;
  std::vector<util::Bytes> per_reducer_payload;
  util::SimTime at;
};

/// Hooks for middleware (Pythia instrumentation) and tooling.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  virtual void on_map_output_ready(const MapOutputNotice& /*notice*/) {}
  virtual void on_reducer_started(std::size_t /*job_serial*/,
                                  std::size_t /*reduce_index*/,
                                  net::NodeId /*server*/,
                                  util::SimTime /*at*/) {}
  virtual void on_fetch_started(std::size_t /*job_serial*/,
                                const FetchRecord& /*fetch*/,
                                net::FlowId /*flow*/) {}
  virtual void on_fetch_completed(std::size_t /*job_serial*/,
                                  const FetchRecord& /*fetch*/) {}
  virtual void on_job_completed(std::size_t /*job_serial*/,
                                const JobResult& /*result*/) {}
};

class MapReduceEngine {
 public:
  using JobCallback = std::function<void(const JobResult&)>;

  MapReduceEngine(sim::Simulation& sim, net::Fabric& fabric,
                  sdn::Controller& controller, ClusterConfig cluster);

  MapReduceEngine(const MapReduceEngine&) = delete;
  MapReduceEngine& operator=(const MapReduceEngine&) = delete;

  /// Submits a job (FIFO scheduling across jobs); `on_done` fires when the
  /// last reducer commits. Returns the job's serial number.
  std::size_t submit(JobSpec spec, JobCallback on_done = {});

  void add_observer(EngineObserver* obs) { observers_.push_back(obs); }

  [[nodiscard]] const ClusterConfig& cluster() const { return cluster_; }
  [[nodiscard]] std::size_t jobs_submitted() const { return jobs_.size(); }
  [[nodiscard]] std::size_t jobs_completed() const { return jobs_completed_; }

  /// Reducer weights chosen for a submitted job (for tests/analysis).
  [[nodiscard]] const std::vector<double>& job_reducer_weights(
      std::size_t serial) const;

  /// Serializes the engine's logical state for snapshots: per-job task and
  /// reducer progress (including partial JobResults), slot occupancy, and
  /// the scheduler cursors. Pending event *handles* are reduced to their
  /// liveness flags — the events themselves live in the queue skeleton.
  void encode_state(sim::StateEncoder& enc) const;

 private:
  struct PendingFetch {
    std::size_t map_index;
    net::NodeId src_server;
    util::Bytes payload;
    util::SimTime enqueued;
  };

  struct ReducerState {
    std::size_t index = 0;
    net::NodeId server;          // invalid until scheduled
    bool scheduled = false;
    util::SimTime started;
    std::deque<PendingFetch> pending;
    std::size_t inflight = 0;
    std::size_t fetched = 0;
    util::Bytes shuffled;
    util::SimTime shuffle_done;
  };

  struct JobState {
    std::size_t serial = 0;
    JobSpec spec;
    JobCallback on_done;
    util::SimTime submitted;

    std::vector<double> weights;           // reducer shares
    std::deque<std::size_t> pending_maps;  // not yet launched
    std::vector<std::size_t> map_attempts; // per map task

    /// Live attempt bookkeeping per map task (speculation + fault paths).
    struct MapAttempt {
      std::uint64_t id = 0;
      std::size_t server_ordinal = 0;
      sim::EventHandle next_event;  // the attempt's pending terminal event
    };
    struct MapRuntime {
      bool done = false;
      bool backup_launched = false;
      std::vector<MapAttempt> running;
    };
    std::vector<MapRuntime> map_runtime;
    double finished_map_duration_sum = 0.0;  // speculation threshold input
    std::size_t maps_finished = 0;
    std::size_t maps_running = 0;
    std::vector<ReducerState> reducers;
    std::size_t reducers_scheduled = 0;
    std::size_t reducers_finished = 0;
    bool completed = false;

    JobResult result;
  };

  struct ServerSlots {
    std::size_t map_free = 0;
    std::size_t reduce_free = 0;
  };

  void schedule_pass();
  void launch_map(JobState& job, std::size_t map_index,
                  std::size_t server_ordinal);
  void maybe_speculate(JobState& job, std::size_t map_index);
  /// Retires every live attempt of a finished map: cancels pending events
  /// and frees the slots (the jobtracker kills losing attempts).
  void retire_attempts(JobState& job, std::size_t map_index);
  void finish_map(JobState& job, std::size_t map_index,
                  std::size_t server_ordinal, util::SimTime started);
  void launch_reducer(JobState& job, std::size_t reduce_index,
                      std::size_t server_ordinal);
  void pump_reducer(JobState& job, ReducerState& red);
  void begin_fetch(JobState& job, ReducerState& red, PendingFetch fetch);
  void finish_fetch(JobState& job, ReducerState& red,
                    const FetchRecord& record);
  /// HDFS write-back of the reducer's output (no-op unless dfs_replication
  /// >= 2), then finish_reducer.
  void write_output(JobState& job, ReducerState& red,
                    std::size_t server_ordinal);
  void finish_reducer(JobState& job, ReducerState& red,
                      std::size_t server_ordinal);
  void complete_job(JobState& job);

  [[nodiscard]] util::Duration jittered(util::Duration base, double rel_stddev,
                                        util::Xoshiro256& rng) const;
  [[nodiscard]] std::uint16_t next_ephemeral_port();

  // pythia-lint: allow(snapshot-skip, group) wiring and config identity:
  // pointers are re-connected by the restore factory, and cluster_ is
  // regenerated from the fingerprinted ScenarioConfig (its derived `servers`
  // list included).
  sim::Simulation* sim_;
  net::Fabric* fabric_;
  sdn::Controller* controller_;
  ClusterConfig cluster_;

  /// First server ordinal with a free map slot, probing from the cursor;
  /// SIZE_MAX if the cluster is map-saturated.
  [[nodiscard]] std::size_t find_free_map_slot();

  std::vector<ServerSlots> slots_;          // parallel to cluster_.servers
  std::uint64_t attempt_counter_ = 0;
  std::size_t map_rr_cursor_ = 0;           // round-robin cursors
  std::size_t reduce_rr_cursor_ = 0;
  std::uint16_t ephemeral_port_ = 30000;

  std::vector<std::unique_ptr<JobState>> jobs_;
  std::size_t jobs_completed_ = 0;
  // pythia-lint: allow(snapshot-skip) observers re-register themselves when
  // the owning experiment wires the restored stack back together.
  std::vector<EngineObserver*> observers_;
};

}  // namespace pythia::hadoop
